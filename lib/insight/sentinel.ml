module B = Pld_core.Build
module R = Pld_core.Runner
module Flow = Pld_core.Flow
module Suite = Pld_rosetta.Suite
module Fp = Pld_fabric.Floorplan

type options = {
  benches : string list;
  levels : B.level list;
  repeats : int;
  pace : float;
  jobs : int;
  run_perf : bool;
}

let default_options =
  {
    benches = [ "spam"; "optical" ];
    levels = [ B.O1; B.O3 ];
    repeats = 3;
    pace = 0.0;
    jobs = 1;
    run_perf = true;
  }

let level_of_string s =
  let s = String.lowercase_ascii s in
  let s = if String.length s > 0 && s.[0] = '-' then String.sub s 1 (String.length s - 1) else s in
  match s with
  | "o0" -> Some B.O0
  | "o1" -> Some B.O1
  | "o3" -> Some B.O3
  | "vitis" -> Some B.Vitis
  | _ -> None

let iso_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

(* One (bench, level) cell: [repeats] cold-cache compiles for the
   noisy classes, the first compile's report (plus one functional run)
   for the deterministic ones. *)
let measure_entry opts (b : Suite.bench) level =
  let fp = Fp.u50 () in
  let graph = b.Suite.graph (Pld_ir.Graph.Hw { page_hint = None }) in
  let compile_once () =
    let cache = B.create_cache () in
    B.compile ~cache ~jobs:opts.jobs ~pace:opts.pace fp graph ~level
  in
  let apps = List.init (max 1 opts.repeats) (fun _ -> compile_once ()) in
  let reports = List.map (fun (a : B.app) -> a.B.report) apps in
  let tool_samples f = List.map f reports in
  let tool =
    List.map
      (fun (name, f) -> (name, Baseline.stats_of (tool_samples f)))
      [
        ("hls_seconds", fun (r : B.report) -> r.B.phases.Flow.hls);
        ("syn_seconds", fun r -> r.B.phases.Flow.syn);
        ("pnr_seconds", fun r -> r.B.phases.Flow.pnr);
        ("bitgen_seconds", fun r -> r.B.phases.Flow.bitgen);
        ("serial_seconds", fun r -> r.B.serial_seconds);
        ("parallel_seconds", fun r -> r.B.parallel_seconds);
      ]
  in
  let wall =
    [ ("wall_seconds", Baseline.stats_of (tool_samples (fun r -> r.B.wall_seconds))) ]
  in
  let first = List.hd reports in
  let exact =
    [
      ("cache_hits", float_of_int first.B.cache_hits);
      ("recompiled", float_of_int first.B.recompiled);
      ("overhead_seconds", first.B.phases.Flow.overhead);
    ]
    @
    if not opts.run_perf then []
    else begin
      let r = R.run (List.hd apps) ~inputs:(b.Suite.workload ()) in
      [
        ("fmax_mhz", r.R.perf.R.fmax_mhz);
        ("frame_cycles", float_of_int r.R.perf.R.frame_cycles);
        ("ms_per_input", r.R.perf.R.ms_per_input);
      ]
    end
  in
  { Baseline.bench = b.Suite.name; level = B.level_name level; exact; tool; wall }

let measure ?(suite = "rosetta") opts =
  let entries =
    List.concat_map
      (fun name ->
        let b = Suite.find name in
        List.map (measure_entry opts b) opts.levels)
      opts.benches
  in
  {
    Baseline.version = Baseline.current_version;
    suite;
    created = iso_now ();
    repeats = opts.repeats;
    pace = opts.pace;
    entries;
  }

let perturb factors (s : Baseline.snapshot) =
  let scale name v =
    match List.assoc_opt name factors with Some f -> v *. f | None -> v
  in
  let scale_stats name (st : Baseline.stats) =
    match List.assoc_opt name factors with
    | None -> st
    | Some f ->
        {
          st with
          Baseline.median = st.Baseline.median *. f;
          mad = st.Baseline.mad *. Float.abs f;
          lo = Float.min (st.Baseline.lo *. f) (st.Baseline.hi *. f);
          hi = Float.max (st.Baseline.lo *. f) (st.Baseline.hi *. f);
        }
  in
  {
    s with
    Baseline.entries =
      List.map
        (fun (e : Baseline.entry) ->
          {
            e with
            Baseline.exact = List.map (fun (m, v) -> (m, scale m v)) e.Baseline.exact;
            tool = List.map (fun (m, st) -> (m, scale_stats m st)) e.Baseline.tool;
            wall = List.map (fun (m, st) -> (m, scale_stats m st)) e.Baseline.wall;
          })
        s.Baseline.entries;
  }

let check ~base_file ?thresholds ?exact_only ?out current =
  let base = Baseline.load ~file:base_file in
  let verdict = Baseline.compare_snapshots ?thresholds ?exact_only ~base current in
  Option.iter
    (fun file -> Pld_telemetry.Json.write_file ~pretty:true ~file (Baseline.verdict_json verdict))
    out;
  verdict
