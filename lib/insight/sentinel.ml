module B = Pld_core.Build
module R = Pld_core.Runner
module Flow = Pld_core.Flow
module Suite = Pld_rosetta.Suite
module Fp = Pld_fabric.Floorplan

type options = {
  benches : string list;
  levels : B.level list;
  repeats : int;
  pace : float;
  jobs : int;
  run_perf : bool;
  run_service : bool;
  run_chaos : bool;
  run_incremental : bool;
}

let default_options =
  {
    benches = [ "spam"; "optical" ];
    levels = [ B.O1; B.O3 ];
    repeats = 3;
    pace = 0.0;
    jobs = 1;
    run_perf = true;
    run_service = true;
    run_chaos = true;
    run_incremental = true;
  }

let level_of_string s =
  let s = String.lowercase_ascii s in
  let s = if String.length s > 0 && s.[0] = '-' then String.sub s 1 (String.length s - 1) else s in
  match s with
  | "o0" -> Some B.O0
  | "o1" -> Some B.O1
  | "o3" -> Some B.O3
  | "vitis" -> Some B.Vitis
  | _ -> None

let iso_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

(* One (bench, level) cell: [repeats] cold-cache compiles for the
   noisy classes, the first compile's report (plus one functional run)
   for the deterministic ones. *)
let measure_entry opts (b : Suite.bench) level =
  let fp = Fp.u50 () in
  let graph = b.Suite.graph (Pld_ir.Graph.Hw { page_hint = None }) in
  let compile_once () =
    let cache = B.create_cache () in
    B.compile ~cache ~jobs:opts.jobs ~pace:opts.pace fp graph ~level
  in
  let apps = List.init (max 1 opts.repeats) (fun _ -> compile_once ()) in
  let reports = List.map (fun (a : B.app) -> a.B.report) apps in
  let tool_samples f = List.map f reports in
  let tool =
    List.map
      (fun (name, f) -> (name, Baseline.stats_of (tool_samples f)))
      [
        ("hls_seconds", fun (r : B.report) -> r.B.phases.Flow.hls);
        ("syn_seconds", fun r -> r.B.phases.Flow.syn);
        ("pnr_seconds", fun r -> r.B.phases.Flow.pnr);
        ("bitgen_seconds", fun r -> r.B.phases.Flow.bitgen);
        ("serial_seconds", fun r -> r.B.serial_seconds);
        ("parallel_seconds", fun r -> r.B.parallel_seconds);
      ]
  in
  let wall =
    [ ("wall_seconds", Baseline.stats_of (tool_samples (fun r -> r.B.wall_seconds))) ]
  in
  let first = List.hd reports in
  let exact =
    [
      ("cache_hits", float_of_int first.B.cache_hits);
      ("recompiled", float_of_int first.B.recompiled);
      ("overhead_seconds", first.B.phases.Flow.overhead);
    ]
    @
    if not opts.run_perf then []
    else begin
      let r = R.run (List.hd apps) ~inputs:(b.Suite.workload ()) in
      [
        ("fmax_mhz", r.R.perf.R.fmax_mhz);
        ("frame_cycles", float_of_int r.R.perf.R.frame_cycles);
        ("ms_per_input", r.R.perf.R.ms_per_input);
      ]
    end
  in
  { Baseline.bench = b.Suite.name; level = B.level_name level; exact; tool; wall }

(* The service tier guards the daemon path: a fixed Zipf trace through
   a single-worker service. One worker serializes the compiles, so the
   conservation metrics (sessions completed, distinct graphs, operator
   recompiles, store writes) are exact — every distinct artifact is
   built exactly once no matter how requests interleave. What depends
   on drain timing (dedup vs after-the-fact cache hits) and on the
   machine (latency percentiles) goes in the noise-aware classes. *)
let service_traffic =
  {
    Pld_service.Traffic.default_options with
    Pld_service.Traffic.sessions = 60;
    tenants = 4;
    pool = 12;
    max_chain = 3;
    zipf = 1.1;
    seed = 11;
  }

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let measure_service opts =
  let run_once i =
    (* A fresh persistent store per repeat: cold-cache runs are the
       comparable ones, and a real store is what makes the write
       accounting non-vacuous. *)
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "pld-sentinel-%d-%d" (Unix.getpid ()) i)
    in
    let service =
      Pld_service.Service.create ~cache_dir:dir ~queue_workers:1 ~jobs:opts.jobs ()
    in
    Fun.protect
      ~finally:(fun () ->
        Pld_service.Service.shutdown service;
        rm_rf dir)
      (fun () -> Pld_service.Traffic.run ~service service_traffic)
  in
  let runs = List.init (max 1 opts.repeats) run_once in
  let first = List.hd runs in
  let module Tr = Pld_service.Traffic in
  let tool =
    List.map
      (fun (name, f) -> (name, Baseline.stats_of (List.map f runs)))
      [
        ("svc_latency_p50_s", fun (s : Tr.summary) -> s.Tr.sm_p50);
        ("svc_latency_p95_s", fun s -> s.Tr.sm_p95);
        ("svc_latency_p99_s", fun s -> s.Tr.sm_p99);
        ("svc_latency_mean_s", fun s -> s.Tr.sm_mean);
        ("svc_deduped", fun s -> float_of_int s.Tr.sm_deduped);
        ("svc_cross_tenant_hits", fun s -> float_of_int s.Tr.sm_cross_hits);
        ("svc_cache_hits", fun s -> float_of_int s.Tr.sm_cache_hits);
      ]
  in
  let wall = [ ("wall_seconds", Baseline.stats_of (List.map (fun s -> s.Tr.sm_wall_seconds) runs)) ] in
  let exact =
    [
      ("svc_completed", float_of_int first.Tr.sm_completed);
      ("svc_failed", float_of_int first.Tr.sm_failed);
      ("svc_distinct_graphs", float_of_int first.Tr.sm_distinct_graphs);
      ("svc_recompiled", float_of_int first.Tr.sm_recompiled);
      ("svc_store_writes", float_of_int first.Tr.sm_store_writes);
    ]
  in
  {
    Baseline.bench = "service";
    level = B.level_name service_traffic.Tr.level;
    exact;
    tool;
    wall;
  }

(* The chaos tier guards the failure paths. The deterministic chaos
   scenarios (no forking — safe after domains exist) produce exact
   counter values given a seed: how many submissions were shed, how
   many deadlines expired and where, how many wedged builds the
   watchdog wrote off, how many corrupt entries a scrub quarantined,
   how many dropped connections were counted. Any drift in those
   numbers means the rejection taxonomy or the recovery machinery
   changed — exactly what a refactor breaks silently. Only wall time
   is machine-dependent. *)
let measure_chaos () =
  let module Chaos = Pld_service.Chaos in
  let report = Chaos.run ~seed:7 ~only:Chaos.deterministic_names () in
  let failed =
    List.concat_map
      (fun (s : Chaos.scenario_report) ->
        List.filter (fun (c : Chaos.check) -> not c.Chaos.ck_ok) s.Chaos.sr_checks)
      report.Chaos.r_scenarios
  in
  let exact =
    ("chaos_checks_failed", float_of_int (List.length failed))
    :: List.map (fun (n, v) -> (n, float_of_int v)) (Chaos.counters report)
  in
  let wall_s =
    List.fold_left (fun acc s -> acc +. s.Chaos.sr_wall_s) 0.0 report.Chaos.r_scenarios
  in
  let wall = [ ("wall_seconds", Baseline.stats_of [ wall_s ]) ] in
  { Baseline.bench = "chaos"; level = "seed7"; exact; tool = []; wall }

(* The incremental tier guards the delta-P&R fast path: compile each
   bench cold at -O3, touch one operator, and recompile seeded with the
   previous build. Whether the delta path was taken (vs a fallback
   reason) is deterministic given the seed, so it goes in the exact
   class — a placer or gate change that silently knocks a benchmark
   back to scratch compiles trips the sentinel. The scratch and delta
   P&R times (and their ratio, the headline speedup) are wall-clock and
   land in the noise-aware tool class. *)
let measure_incremental opts (b : Suite.bench) =
  let fp = Fp.u50 () in
  let g = b.Suite.graph (Pld_ir.Graph.Hw { page_hint = None }) in
  let victim = (List.hd g.Pld_ir.Graph.instances).Pld_ir.Graph.inst_name in
  let edited = Option.get (Pld_ir.Graph.touch_op g victim) in
  let pnr_seconds (app : B.app) =
    let p = (B.monolithic_exn app).Flow.pnr3 in
    p.Pld_pnr.Pnr.place_seconds +. p.Pld_pnr.Pnr.route_seconds +. p.Pld_pnr.Pnr.sta_seconds
  in
  let run_once () =
    let cache = B.create_cache () in
    let scratch = B.compile ~cache ~jobs:opts.jobs ~pace:opts.pace fp g ~level:B.O3 in
    let delta =
      B.compile ~cache ~jobs:opts.jobs ~pace:opts.pace ~previous:scratch fp edited ~level:B.O3
    in
    (scratch, delta)
  in
  let runs = List.init (max 1 opts.repeats) (fun _ -> run_once ()) in
  let tool =
    let stats f = Baseline.stats_of (List.map f runs) in
    [
      ("inc_scratch_pnr_seconds", stats (fun (s, _) -> pnr_seconds s));
      ("inc_delta_pnr_seconds", stats (fun (_, d) -> pnr_seconds d));
      ( "inc_speedup",
        stats (fun (s, d) -> pnr_seconds s /. Float.max 1e-9 (pnr_seconds d)) );
    ]
  in
  let _, first_delta = List.hd runs in
  let stats = (B.monolithic_exn first_delta).Flow.pnr3.Pld_pnr.Pnr.delta in
  let exact =
    match stats with
    | Some d ->
        [
          ( "inc_delta_hits",
            if d.Pld_pnr.Pnr.fallback = None then 1.0 else 0.0 );
          ("inc_cells_kept", float_of_int d.Pld_pnr.Pnr.cells_kept);
          ("inc_nets_rerouted", float_of_int d.Pld_pnr.Pnr.nets_rerouted);
        ]
    | None -> [ ("inc_delta_hits", 0.0) ]
  in
  { Baseline.bench = b.Suite.name; level = "incremental"; exact; tool; wall = [] }

let measure ?(suite = "rosetta") opts =
  let entries =
    List.concat_map
      (fun name ->
        let b = Suite.find name in
        List.map (measure_entry opts b) opts.levels)
      opts.benches
    @ (if opts.run_incremental then
         List.map (fun name -> measure_incremental opts (Suite.find name)) opts.benches
       else [])
    @ (if opts.run_service then [ measure_service opts ] else [])
    @ (if opts.run_chaos then [ measure_chaos () ] else [])
  in
  {
    Baseline.version = Baseline.current_version;
    suite;
    created = iso_now ();
    repeats = opts.repeats;
    pace = opts.pace;
    entries;
  }

let perturb factors (s : Baseline.snapshot) =
  let scale name v =
    match List.assoc_opt name factors with Some f -> v *. f | None -> v
  in
  let scale_stats name (st : Baseline.stats) =
    match List.assoc_opt name factors with
    | None -> st
    | Some f ->
        {
          st with
          Baseline.median = st.Baseline.median *. f;
          mad = st.Baseline.mad *. Float.abs f;
          lo = Float.min (st.Baseline.lo *. f) (st.Baseline.hi *. f);
          hi = Float.max (st.Baseline.lo *. f) (st.Baseline.hi *. f);
        }
  in
  {
    s with
    Baseline.entries =
      List.map
        (fun (e : Baseline.entry) ->
          {
            e with
            Baseline.exact = List.map (fun (m, v) -> (m, scale m v)) e.Baseline.exact;
            tool = List.map (fun (m, st) -> (m, scale_stats m st)) e.Baseline.tool;
            wall = List.map (fun (m, st) -> (m, scale_stats m st)) e.Baseline.wall;
          })
        s.Baseline.entries;
  }

let check ~base_file ?thresholds ?exact_only ?out current =
  let base = Baseline.load ~file:base_file in
  let verdict = Baseline.compare_snapshots ?thresholds ?exact_only ~base current in
  Option.iter
    (fun file -> Pld_telemetry.Json.write_file ~pretty:true ~file (Baseline.verdict_json verdict))
    out;
  verdict
