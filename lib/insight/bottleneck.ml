module P = Pld_core.Fabric_profile
module Json = Pld_telemetry.Json

type finding = {
  bk_op : string;
  bk_kind : string;
  bk_attributed : int;
  bk_fraction : float;
  bk_victims : (string * int) list;
}

type report = {
  bk_graph : string;
  bk_level : string;
  bk_total_stalls : int;
  bk_findings : finding list;
  bk_perf_bottleneck : string;
  bk_agrees : bool;
}

let host_in = "host-dma-in"
let host_out = "host-dma-out"

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let attribute (p : P.t) =
  let op_of name = List.find_opt (fun (o : P.op_stat) -> o.P.op_name = name) p.P.pf_ops in
  (* The dominant-direction walk. [`Up] follows starvation to the slow
     producer; [`Down] follows back-pressure to the slow consumer. *)
  let step dir name =
    let candidates =
      List.filter
        (fun (c : P.chan_stat) ->
          match dir with
          | `Up -> c.P.ch_dst = Some name && c.P.ch_blocked_reads > 0
          | `Down -> c.P.ch_src = Some name && c.P.ch_blocked_writes > 0)
        p.P.pf_chans
    in
    let weight (c : P.chan_stat) =
      match dir with `Up -> c.P.ch_blocked_reads | `Down -> c.P.ch_blocked_writes
    in
    match candidates with
    | [] -> None
    | first :: rest ->
        let best = List.fold_left (fun a c -> if weight c > weight a then c else a) first rest in
        Some ((match dir with `Up -> best.P.ch_src | `Down -> best.P.ch_dst), weight best)
  in
  (* Keep walking while the next operator is itself predominantly
     stalled in the same direction — its stalls have the same root
     cause further along. *)
  let continues dir (o : P.op_stat) =
    match dir with
    | `Up -> o.P.op_blocked_read > 0 && o.P.op_blocked_read >= o.P.op_blocked_write
    | `Down -> o.P.op_blocked_write > 0 && o.P.op_blocked_write > o.P.op_blocked_read
  in
  (* ... and while the stall pressure actually propagates through it:
     the rate limiter is exactly the operator where the signature
     attenuates — heavy starvation (or back-pressure) on its output
     side, little on its input side. A handful of warm-up stalls must
     not carry the walk past it, so the next hop's strongest channel
     has to carry at least half the pressure of the hop that led
     there. *)
  let propagates dir name w =
    match step dir name with Some (_, w2) -> 2 * w2 >= w | None -> false
  in
  let rec walk dir visited name =
    match step dir name with
    | None -> (name, match op_of name with Some o -> o.P.op_kind | None -> "host")
    | Some (None, _) -> ((match dir with `Up -> host_in | `Down -> host_out), "host")
    | Some (Some next, w) -> (
        if List.mem next visited then (next, match op_of next with Some o -> o.P.op_kind | None -> "host")
        else
          match op_of next with
          | Some o when continues dir o && propagates dir next w -> walk dir (next :: visited) next
          | Some o -> (next, o.P.op_kind)
          | None -> (next, "host"))
  in
  let charges : (string, string * int ref * (string * int) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let total_stalls = ref 0 in
  List.iter
    (fun (o : P.op_stat) ->
      let events = o.P.op_blocked_read + o.P.op_blocked_write in
      total_stalls := !total_stalls + events;
      if events > 0 then begin
        let dir = if o.P.op_blocked_read >= o.P.op_blocked_write then `Up else `Down in
        let culprit, kind = walk dir [ o.P.op_name ] o.P.op_name in
        let _, count, victims =
          match Hashtbl.find_opt charges culprit with
          | Some c -> c
          | None ->
              let c = (kind, ref 0, ref []) in
              Hashtbl.replace charges culprit c;
              c
        in
        count := !count + events;
        victims := (o.P.op_name, events) :: !victims
      end)
    p.P.pf_ops;
  let findings =
    Hashtbl.fold
      (fun op (kind, count, victims) acc ->
        {
          bk_op = op;
          bk_kind = kind;
          bk_attributed = !count;
          bk_fraction =
            (if !total_stalls = 0 then 0.0 else float_of_int !count /. float_of_int !total_stalls);
          bk_victims = List.sort (fun (_, a) (_, b) -> compare b a) !victims;
        }
        :: acc)
      charges []
    |> List.sort (fun a b -> compare b.bk_attributed a.bk_attributed)
  in
  let agrees =
    match findings with
    | [] -> true
    | top :: _ ->
        (* The perf model's bottleneck string may carry decoration
           ("scale (softcore)", "linking-network bandwidth"); agreement
           means the attributed culprit appears in it, or the walk ended
           at a host/NoC boundary while the model blames the network. *)
        contains ~sub:top.bk_op p.P.pf_bottleneck
        || (top.bk_kind = "host" && contains ~sub:"network" p.P.pf_bottleneck)
  in
  {
    bk_graph = p.P.pf_graph;
    bk_level = p.P.pf_level;
    bk_total_stalls = !total_stalls;
    bk_findings = findings;
    bk_perf_bottleneck = p.P.pf_bottleneck;
    bk_agrees = agrees;
  }

let rate_limiter r =
  match r.bk_findings with [] -> None | top :: _ -> Some (top.bk_op, top.bk_fraction)

let render r =
  let header =
    Printf.sprintf "back-pressure attribution: %s @ %s — %d stall event(s), perf bottleneck %s%s"
      r.bk_graph r.bk_level r.bk_total_stalls r.bk_perf_bottleneck
      (if r.bk_agrees then "" else " (DISAGREES)")
  in
  let lines =
    List.concat_map
      (fun f ->
        Printf.sprintf "  %-20s %-9s %6.1f%% (%d event(s))" f.bk_op f.bk_kind
          (100.0 *. f.bk_fraction) f.bk_attributed
        :: List.map
             (fun (v, n) -> Printf.sprintf "    <- %s stalled %d time(s)" v n)
             f.bk_victims)
      r.bk_findings
  in
  header :: (if r.bk_findings = [] then [ "  no stalls observed" ] else lines)

let to_json r =
  Json.Obj
    [
      ("graph", Json.String r.bk_graph);
      ("level", Json.String r.bk_level);
      ("total_stalls", Json.Int r.bk_total_stalls);
      ("perf_bottleneck", Json.String r.bk_perf_bottleneck);
      ("agrees", Json.Bool r.bk_agrees);
      ( "findings",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("op", Json.String f.bk_op);
                   ("kind", Json.String f.bk_kind);
                   ("attributed", Json.Int f.bk_attributed);
                   ("fraction", Json.Float f.bk_fraction);
                   ( "victims",
                     Json.List
                       (List.map
                          (fun (v, n) ->
                            Json.Obj [ ("op", Json.String v); ("events", Json.Int n) ])
                          f.bk_victims) );
                 ])
             r.bk_findings) );
    ]
