module Digest = Pld_util.Digest_lite
module T = Pld_telemetry.Telemetry

exception Store_error of string

let version = 1
let magic = "PLD-ARTIFACT"
let suffix = ".art"
let lock_name = "store.lock"
let index_name = "store.index"
let index_magic = "PLD-INDEX"
let quarantine_name = "store.quarantine"

(* Per-entry bookkeeping: the LRU stamp (a persisted logical clock, not
   wall time, so it is monotone across processes and restarts) and the
   file size, so the budget check never re-stats the directory. *)
type idx_entry = { mutable stamp : int; mutable bytes : int }

type kind_counters = {
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_puts : int;
  mutable c_evictions : int;
}

type t = {
  root : string;
  mu : Mutex.t;  (** intra-process exclusion *)
  lock_fd : Unix.file_descr;  (** inter-process exclusion ([fcntl] on store.lock) *)
  budget : int option;
  telemetry : T.t;
  keep_evidence : bool;  (** invalid entries move to store.quarantine/ instead of unlink *)
  mutable clock : int;
  index : (string, idx_entry) Hashtbl.t;  (** entry filename -> stamp/size *)
  counters : (string * kind_counters) list ref;  (** per kind, first-use order *)
}

let dir t = t.root
let max_bytes t = t.budget
let quarantine_dir t = Filename.concat t.root quarantine_name

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let entry_path root ~kind ~key = Filename.concat root (kind ^ "-" ^ key ^ suffix)

(* A kind may not contain the [kind]-[key] separator ambiguity or path
   components; keys must be well-formed digests. *)
let check_names ~kind ~key =
  if kind = "" || String.exists (function 'a' .. 'z' | '0' .. '9' | '_' -> false | _ -> true) kind
  then invalid_arg (Printf.sprintf "Store: bad kind %S (lowercase/digits/_ only)" kind);
  if not (Digest.is_hex key) then invalid_arg (Printf.sprintf "Store: bad key %S" key)

(* Header line: "PLD-ARTIFACT v<version> <kind> <key> <payload-digest> <payload-bytes>\n"
   followed by the marshalled payload. Validation re-digests the
   payload, so a flipped bit anywhere evicts the entry. *)
let header ~kind ~key ~payload =
  Printf.sprintf "%s v%d %s %s %s %d\n" magic version kind key (Digest.of_string payload)
    (String.length payload)

(* Returns the payload if and only if every header field checks out. *)
let read_valid path ~kind ~key =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      match input_line ic with
      | exception End_of_file -> None
      | line -> (
          match String.split_on_char ' ' line with
          | [ m; v; k; d; payload_digest; len ] -> (
              match int_of_string_opt len with
              | Some n
                when m = magic
                     && v = "v" ^ string_of_int version
                     && k = kind && Digest.equal d key -> (
                  match really_input_string ic n with
                  | exception End_of_file -> None
                  | payload ->
                      if
                        Digest.equal (Digest.of_string payload) payload_digest
                        && pos_in ic = in_channel_length ic
                      then Some payload
                      else None)
              | _ -> None)
          | _ -> None))

let remove_file path = try Sys.remove path with Sys_error _ -> ()

(* Parse an entry filename back into (kind, key); None for foreign files. *)
let parse_name name =
  if not (Filename.check_suffix name suffix) then None
  else
    let stem = Filename.chop_suffix name suffix in
    match String.rindex_opt stem '-' with
    | Some i ->
        let kind = String.sub stem 0 i in
        let key = String.sub stem (i + 1) (String.length stem - i - 1) in
        if kind <> "" && Digest.is_hex key then Some (kind, key) else None
    | None -> None

(* ---------- per-kind counters & telemetry ---------- *)

let counters_for t kind =
  match List.assoc_opt kind !(t.counters) with
  | Some c -> c
  | None ->
      let c = { c_hits = 0; c_misses = 0; c_puts = 0; c_evictions = 0 } in
      t.counters := !(t.counters) @ [ (kind, c) ];
      c

(* Registry handles are re-fetched per bump so a Telemetry.reset never
   leaves the store incrementing a stale counter. *)
let bump t kind which =
  let c = counters_for t kind in
  (match which with
  | `Hit -> c.c_hits <- c.c_hits + 1
  | `Miss -> c.c_misses <- c.c_misses + 1
  | `Put -> c.c_puts <- c.c_puts + 1
  | `Eviction -> c.c_evictions <- c.c_evictions + 1);
  let name =
    match which with
    | `Hit -> "hits"
    | `Miss -> "misses"
    | `Put -> "puts"
    | `Eviction -> "evictions"
  in
  T.incr (T.counter t.telemetry (Printf.sprintf "store.%s.%s" kind name))

let total_bytes t = Hashtbl.fold (fun _ e acc -> acc + e.bytes) t.index 0

let publish_gauges t =
  T.set_gauge (T.gauge t.telemetry "store.bytes") (float_of_int (total_bytes t));
  T.set_gauge (T.gauge t.telemetry "store.entries") (float_of_int (Hashtbl.length t.index))

(* ---------- access-time index ---------- *)

(* "PLD-INDEX v1 <clock>" then one "<name> <stamp> <bytes>" per entry.
   Always written atomically (unique temp + rename), so a concurrent
   reader sees either the old or the new index, never a torn one. A
   missing or unparseable index is an empty one — the entries
   themselves are the ground truth; the index only orders them. *)
let load_index_file root =
  let path = Filename.concat root index_name in
  match open_in_bin path with
  | exception Sys_error _ -> (0, [])
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> (0, [])
          | first -> (
              match String.split_on_char ' ' first with
              | [ m; v; clk ]
                when m = index_magic && v = "v" ^ string_of_int version ->
                  let clock = Option.value ~default:0 (int_of_string_opt clk) in
                  let entries = ref [] in
                  (try
                     while true do
                       match String.split_on_char ' ' (input_line ic) with
                       | [ name; stamp; bytes ] -> (
                           match (int_of_string_opt stamp, int_of_string_opt bytes) with
                           | Some s, Some b -> entries := (name, s, b) :: !entries
                           | _ -> ())
                       | _ -> ()
                     done
                   with End_of_file -> ());
                  (clock, List.rev !entries)
              | _ -> (0, [])))

let save_index t =
  let path = Filename.concat t.root index_name in
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s v%d %d\n" index_magic version t.clock);
  Hashtbl.iter
    (fun name e -> Buffer.add_string buf (Printf.sprintf "%s %d %d\n" name e.stamp e.bytes))
    t.index;
  (try
     let oc = open_out_bin tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_string oc (Buffer.contents buf))
   with Sys_error e -> raise (Store_error e));
  try Sys.rename tmp path with Sys_error e -> remove_file tmp; raise (Store_error e)

(* Merge the on-disk index into memory (another process may have bumped
   stamps or added entries since we last looked). Stamps merge by max;
   the clock never goes backwards. Entries we know that the disk index
   does not are kept — their files speak for themselves. *)
let reload_index t =
  let clock, entries = load_index_file t.root in
  t.clock <- max t.clock clock;
  List.iter
    (fun (name, stamp, bytes) ->
      match Hashtbl.find_opt t.index name with
      | Some e ->
          e.stamp <- max e.stamp stamp;
          if bytes > 0 then e.bytes <- bytes
      | None -> Hashtbl.replace t.index name { stamp; bytes })
    entries;
  t.clock <- Hashtbl.fold (fun _ e acc -> max acc e.stamp) t.index t.clock

(* ---------- locking ----------

   Two layers: the handle mutex serializes the process's domains, then
   an fcntl record lock on store.lock serializes processes. fcntl locks
   are per-process, so the mutex must be outermost — without it two
   domains would both "hold" the file lock. *)

let rec lockf_retry fd op =
  try Unix.lockf fd op 0 with Unix.Unix_error (Unix.EINTR, _, _) -> lockf_retry fd op

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      lockf_retry t.lock_fd Unix.F_LOCK;
      Fun.protect
        ~finally:(fun () ->
          try Unix.lockf t.lock_fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
        (fun () ->
          reload_index t;
          f ()))

(* ---------- eviction ---------- *)

let drop_entry t name =
  remove_file (Filename.concat t.root name);
  Hashtbl.remove t.index name;
  match parse_name name with Some (kind, _) -> bump t kind `Eviction | None -> ()

(* Move a failed-validation entry aside instead of destroying it: the
   next open (or a human) can autopsy the torn write, and the store
   itself sees a clean miss. Quarantined files never collide — a
   numeric suffix disambiguates repeat offenders. *)
let quarantine_entry t name =
  let qdir = quarantine_dir t in
  (try mkdir_p qdir with Unix.Unix_error _ -> ());
  let src = Filename.concat t.root name in
  let dst =
    let base = Filename.concat qdir name in
    if not (Sys.file_exists base) then base
    else
      let rec pick n =
        let cand = Printf.sprintf "%s.%d" base n in
        if Sys.file_exists cand then pick (n + 1) else cand
      in
      pick 1
  in
  (try Sys.rename src dst with Sys_error _ -> remove_file src);
  Hashtbl.remove t.index name;
  T.incr (T.counter t.telemetry "store.quarantined")

(* Invalid entries leave the live set either way; [keep_evidence]
   decides whether the bytes survive for the post-mortem. *)
let discard_entry t name =
  if t.keep_evidence then quarantine_entry t name else drop_entry t name

(* Evict least-recently-used entries until the byte total fits the
   budget. [keep] (the entry just written) is never its own victim, so
   one oversized artifact parks at the budget instead of thrashing. *)
let enforce_budget t ~keep =
  match t.budget with
  | None -> ()
  | Some budget ->
      let victim () =
        Hashtbl.fold
          (fun name e acc ->
            if name = keep then acc
            else
              match acc with
              | Some (_, best) when best.stamp <= e.stamp -> acc
              | _ -> Some (name, e))
          t.index None
      in
      let rec go () =
        if total_bytes t > budget then
          match victim () with
          | Some (name, _) ->
              drop_entry t name;
              go ()
          | None -> ()
      in
      go ()

(* ---------- open ---------- *)

(* Sweep pass, run under the lock at open: orphaned temp files from a
   crash mid-serialize, foreign/malformed .art names, and entries that
   fail validation (corruption, stale version) all go. *)
let sweep t =
  Array.iter
    (fun name ->
      let path = Filename.concat t.root name in
      if name <> lock_name && name <> index_name && not (Sys.is_directory path) then
        if Filename.check_suffix name ".tmp" then remove_file path
        else
          match parse_name name with
          | None -> if Filename.check_suffix name suffix then discard_entry t name
          | Some (kind, key) -> (
              match read_valid path ~kind ~key with
              | Some _ ->
                  if not (Hashtbl.mem t.index name) then
                    (* Known file the index never saw (e.g. the index
                       was lost): adopt it as oldest, so LRU pressure
                       reaches it first. *)
                    Hashtbl.replace t.index name
                      { stamp = 0; bytes = (try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0) }
              | None | (exception Sys_error _) -> discard_entry t name))
    (try Sys.readdir t.root with Sys_error _ -> [||]);
  (* And the reverse: index rows whose entry file is gone. *)
  let stale =
    Hashtbl.fold
      (fun name _ acc -> if Sys.file_exists (Filename.concat t.root name) then acc else name :: acc)
      t.index []
  in
  List.iter (Hashtbl.remove t.index) stale

let open_ ?max_bytes ?(quarantine = false) ?(telemetry = T.default) ~dir () =
  (try mkdir_p dir with Unix.Unix_error (e, _, _) ->
    raise (Store_error (Printf.sprintf "cannot create %s: %s" dir (Unix.error_message e))));
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    raise (Store_error (Printf.sprintf "cannot create %s" dir));
  let lock_fd =
    try Unix.openfile (Filename.concat dir lock_name) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
    with Unix.Unix_error (e, _, _) ->
      raise (Store_error (Printf.sprintf "cannot open %s/%s: %s" dir lock_name (Unix.error_message e)))
  in
  let t =
    {
      root = dir;
      mu = Mutex.create ();
      lock_fd;
      budget = max_bytes;
      telemetry;
      keep_evidence = quarantine;
      clock = 0;
      index = Hashtbl.create 64;
      counters = ref [];
    }
  in
  with_lock t (fun () ->
      sweep t;
      enforce_budget t ~keep:"";
      save_index t;
      publish_gauges t);
  t

(* ---------- operations ---------- *)

let touch t name =
  match Hashtbl.find_opt t.index name with
  | Some e ->
      t.clock <- t.clock + 1;
      e.stamp <- t.clock
  | None -> ()

let find (type a) t ~kind ~key : a option =
  check_names ~kind ~key;
  with_lock t (fun () ->
      let name = kind ^ "-" ^ key ^ suffix in
      let path = entry_path t.root ~kind ~key in
      let miss () =
        bump t kind `Miss;
        None
      in
      if not (Sys.file_exists path) then begin
        Hashtbl.remove t.index name;
        miss ()
      end
      else
        match read_valid path ~kind ~key with
        | Some payload -> (
            match (Marshal.from_string payload 0 : a) with
            | v ->
                bump t kind `Hit;
                touch t name;
                save_index t;
                Some v
            | exception _ ->
                discard_entry t name;
                save_index t;
                publish_gauges t;
                miss ())
        | None ->
            discard_entry t name;
            save_index t;
            publish_gauges t;
            miss ()
        | exception Sys_error _ -> miss ())

let put t ~kind ~key v =
  check_names ~kind ~key;
  let payload = Marshal.to_string v [] in
  with_lock t (fun () ->
      let name = kind ^ "-" ^ key ^ suffix in
      let path = entry_path t.root ~kind ~key in
      (* A unique temp name per process, so two writers racing on one
         key never scribble on each other's temp file; the rename is
         last-writer-wins over identical content. *)
      let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
      (try
         let oc = open_out_bin tmp in
         Fun.protect
           ~finally:(fun () -> close_out_noerr oc)
           (fun () ->
             output_string oc (header ~kind ~key ~payload);
             output_string oc payload)
       with Sys_error e -> raise (Store_error e));
      (try Sys.rename tmp path with Sys_error e -> remove_file tmp; raise (Store_error e));
      let bytes = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
      Hashtbl.remove t.index name;
      t.clock <- t.clock + 1;
      Hashtbl.replace t.index name { stamp = t.clock; bytes };
      bump t kind `Put;
      enforce_budget t ~keep:name;
      save_index t;
      publish_gauges t)

let mem t ~kind ~key =
  check_names ~kind ~key;
  with_lock t (fun () ->
      let name = kind ^ "-" ^ key ^ suffix in
      let path = entry_path t.root ~kind ~key in
      if
        Sys.file_exists path
        && match read_valid path ~kind ~key with Some _ -> true | None | (exception Sys_error _) -> false
      then begin
        bump t kind `Hit;
        touch t name;
        save_index t;
        true
      end
      else begin
        bump t kind `Miss;
        false
      end)

let entries t =
  with_lock t (fun () ->
      Array.to_list (try Sys.readdir t.root with Sys_error _ -> [||])
      |> List.filter_map parse_name)

let count t = List.length (entries t)

(* ---------- scrub ---------- *)

type scrub_report = {
  sc_scanned : int;
  sc_ok : int;
  sc_quarantined : int;
  sc_quarantine_dir : string;
}

(* Full on-demand validation pass: every entry file is re-read and
   re-digested; failures move to store.quarantine/ regardless of the
   handle's open mode, so torn writes from a crashed peer degrade to
   clean misses instead of exceptions at some later find. *)
let scrub t =
  with_lock t (fun () ->
      let scanned = ref 0 and ok = ref 0 and bad = ref 0 in
      Array.iter
        (fun name ->
          let path = Filename.concat t.root name in
          if name <> lock_name && name <> index_name && not (Sys.is_directory path) then
            if Filename.check_suffix name ".tmp" then remove_file path
            else if Filename.check_suffix name suffix then begin
              incr scanned;
              match parse_name name with
              | None ->
                  incr bad;
                  quarantine_entry t name
              | Some (kind, key) -> (
                  match read_valid path ~kind ~key with
                  | Some _ -> incr ok
                  | None | (exception Sys_error _) ->
                      incr bad;
                      quarantine_entry t name)
            end)
        (try Sys.readdir t.root with Sys_error _ -> [||]);
      save_index t;
      publish_gauges t;
      {
        sc_scanned = !scanned;
        sc_ok = !ok;
        sc_quarantined = !bad;
        sc_quarantine_dir = quarantine_dir t;
      })

let render_scrub r =
  Printf.sprintf "scrub: %d scanned, %d ok, %d quarantined%s" r.sc_scanned r.sc_ok r.sc_quarantined
    (if r.sc_quarantined > 0 then " -> " ^ r.sc_quarantine_dir else "")

let clear t =
  with_lock t (fun () ->
      Array.iter
        (fun name ->
          match parse_name name with
          | Some _ -> drop_entry t name
          | None -> ())
        (try Sys.readdir t.root with Sys_error _ -> [||]);
      save_index t;
      publish_gauges t)

(* ---------- statistics ---------- *)

type kind_stats = {
  ks_kind : string;
  ks_entries : int;
  ks_bytes : int;
  ks_hits : int;
  ks_misses : int;
  ks_puts : int;
  ks_evictions : int;
}

type stats = { s_entries : int; s_bytes : int; s_kinds : kind_stats list }

let stats t =
  with_lock t (fun () ->
      (* Index rows grouped by kind; counter rows for kinds that have
         traffic but no surviving entries still show up. *)
      let sizes = Hashtbl.create 8 in
      Hashtbl.iter
        (fun name e ->
          match parse_name name with
          | Some (kind, _) ->
              let n, b = Option.value ~default:(0, 0) (Hashtbl.find_opt sizes kind) in
              Hashtbl.replace sizes kind (n + 1, b + e.bytes)
          | None -> ())
        t.index;
      let kinds_in_counters = List.map fst !(t.counters) in
      let kinds_only_on_disk =
        Hashtbl.fold
          (fun kind _ acc -> if List.mem kind kinds_in_counters then acc else kind :: acc)
          sizes []
      in
      let kind_row kind =
        let n, b = Option.value ~default:(0, 0) (Hashtbl.find_opt sizes kind) in
        let c =
          Option.value
            ~default:{ c_hits = 0; c_misses = 0; c_puts = 0; c_evictions = 0 }
            (List.assoc_opt kind !(t.counters))
        in
        {
          ks_kind = kind;
          ks_entries = n;
          ks_bytes = b;
          ks_hits = c.c_hits;
          ks_misses = c.c_misses;
          ks_puts = c.c_puts;
          ks_evictions = c.c_evictions;
        }
      in
      let kinds = List.map kind_row (kinds_in_counters @ List.sort compare kinds_only_on_disk) in
      {
        s_entries = Hashtbl.length t.index;
        s_bytes = total_bytes t;
        s_kinds = kinds;
      })

let render_stats s =
  let row k =
    Printf.sprintf "%-10s %6d entries %10d B %6d hits %6d misses %5d puts %5d evictions"
      k.ks_kind k.ks_entries k.ks_bytes k.ks_hits k.ks_misses k.ks_puts k.ks_evictions
  in
  List.map row s.s_kinds
  @ [ Printf.sprintf "%-10s %6d entries %10d B" "total" s.s_entries s.s_bytes ]
