module Digest = Pld_util.Digest_lite

exception Store_error of string

let version = 1
let magic = "PLD-ARTIFACT"
let suffix = ".art"

type t = { root : string; lock : Mutex.t }

let dir t = t.root

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let entry_path root ~kind ~key = Filename.concat root (kind ^ "-" ^ key ^ suffix)

(* A kind may not contain the [kind]-[key] separator ambiguity or path
   components; keys must be well-formed digests. *)
let check_names ~kind ~key =
  if kind = "" || String.exists (function 'a' .. 'z' | '0' .. '9' | '_' -> false | _ -> true) kind
  then invalid_arg (Printf.sprintf "Store: bad kind %S (lowercase/digits/_ only)" kind);
  if not (Digest.is_hex key) then invalid_arg (Printf.sprintf "Store: bad key %S" key)

(* Header line: "PLD-ARTIFACT v<version> <kind> <key> <payload-digest> <payload-bytes>\n"
   followed by the marshalled payload. Validation re-digests the
   payload, so a flipped bit anywhere evicts the entry. *)
let header ~kind ~key ~payload =
  Printf.sprintf "%s v%d %s %s %s %d\n" magic version kind key (Digest.of_string payload)
    (String.length payload)

(* Returns the payload if and only if every header field checks out. *)
let read_valid path ~kind ~key =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      match input_line ic with
      | exception End_of_file -> None
      | line -> (
          match String.split_on_char ' ' line with
          | [ m; v; k; d; payload_digest; len ] -> (
              match int_of_string_opt len with
              | Some n
                when m = magic
                     && v = "v" ^ string_of_int version
                     && k = kind && Digest.equal d key -> (
                  match really_input_string ic n with
                  | exception End_of_file -> None
                  | payload ->
                      if
                        Digest.equal (Digest.of_string payload) payload_digest
                        && pos_in ic = in_channel_length ic
                      then Some payload
                      else None)
              | _ -> None)
          | _ -> None))

let evict path = try Sys.remove path with Sys_error _ -> ()

(* Parse an entry filename back into (kind, key); None for foreign files. *)
let parse_name name =
  if not (Filename.check_suffix name suffix) then None
  else
    let stem = Filename.chop_suffix name suffix in
    match String.rindex_opt stem '-' with
    | Some i ->
        let kind = String.sub stem 0 i in
        let key = String.sub stem (i + 1) (String.length stem - i - 1) in
        if kind <> "" && Digest.is_hex key then Some (kind, key) else None
    | None -> None

let sweep root =
  Array.iter
    (fun name ->
      let path = Filename.concat root name in
      if not (Sys.is_directory path) then
        match parse_name name with
        | None -> if Filename.check_suffix name suffix then evict path
        | Some (kind, key) -> (
            match read_valid path ~kind ~key with
            | Some _ -> ()
            | None | (exception Sys_error _) -> evict path))
    (try Sys.readdir root with Sys_error _ -> [||])

let open_ ~dir =
  (try mkdir_p dir with Unix.Unix_error (e, _, _) ->
    raise (Store_error (Printf.sprintf "cannot create %s: %s" dir (Unix.error_message e))));
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    raise (Store_error (Printf.sprintf "cannot create %s" dir));
  sweep dir;
  { root = dir; lock = Mutex.create () }

let find (type a) t ~kind ~key : a option =
  check_names ~kind ~key;
  locked t (fun () ->
      let path = entry_path t.root ~kind ~key in
      if not (Sys.file_exists path) then None
      else
        match read_valid path ~kind ~key with
        | Some payload -> (
            match (Marshal.from_string payload 0 : a) with
            | v -> Some v
            | exception _ ->
                evict path;
                None)
        | None ->
            evict path;
            None
        | exception Sys_error _ -> None)

let put t ~kind ~key v =
  check_names ~kind ~key;
  let payload = Marshal.to_string v [] in
  locked t (fun () ->
      let path = entry_path t.root ~kind ~key in
      let tmp = path ^ ".tmp" in
      (try
         let oc = open_out_bin tmp in
         Fun.protect
           ~finally:(fun () -> close_out_noerr oc)
           (fun () ->
             output_string oc (header ~kind ~key ~payload);
             output_string oc payload)
       with Sys_error e -> raise (Store_error e));
      try Sys.rename tmp path with Sys_error e -> evict tmp; raise (Store_error e))

let mem t ~kind ~key =
  check_names ~kind ~key;
  locked t (fun () ->
      let path = entry_path t.root ~kind ~key in
      Sys.file_exists path
      && match read_valid path ~kind ~key with Some _ -> true | None | (exception Sys_error _) -> false)

let entries t =
  locked t (fun () ->
      Array.to_list (try Sys.readdir t.root with Sys_error _ -> [||])
      |> List.filter_map parse_name)

let count t = List.length (entries t)

let clear t =
  locked t (fun () ->
      Array.iter
        (fun name ->
          match parse_name name with
          | Some _ -> evict (Filename.concat t.root name)
          | None -> ())
        (try Sys.readdir t.root with Sys_error _ -> [||]))
