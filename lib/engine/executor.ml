type 'a result = {
  artifacts : (string * 'a) list;
  wall_seconds : float;
  events : Event.t list;
}

(* Both the sequential and the parallel paths funnel every event
   through one recorder so traces have a single emission order. *)
type recorder = { rec_lock : Mutex.t; mutable trace : Event.t list; sink : Event.t -> unit }

let recorder sink = { rec_lock = Mutex.create (); trace = []; sink }

let record r e =
  Mutex.lock r.rec_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock r.rec_lock)
    (fun () ->
      r.trace <- e :: r.trace;
      r.sink e)

let pace_off ~pace ~model ~elapsed =
  if pace > 0.0 then begin
    let due = (pace *. model) -. elapsed in
    if due > 0.0 then Unix.sleepf due
  end

(* Runs one node against completed results, returning its artifact and
   emitting start/finish (failures emit and re-raise). *)
let run_node ~rec_ ~pace ~worker ~fetch node =
  let id = Jobgraph.id node and kind = Jobgraph.kind node in
  record rec_ (Event.Job_start { job = id; kind; worker });
  let t0 = Unix.gettimeofday () in
  match Jobgraph.run node { Jobgraph.fetch; emit = record rec_; worker } with
  | v ->
      let model = Jobgraph.model node v in
      pace_off ~pace ~model ~elapsed:(Unix.gettimeofday () -. t0);
      record rec_
        (Event.Job_finish
           {
             job = id;
             kind;
             worker;
             wall_seconds = Unix.gettimeofday () -. t0;
             model_seconds = model;
             phases = Jobgraph.phases node v;
           });
      v
  | exception e ->
      record rec_ (Event.Job_failed { job = id; kind; worker; error = Printexc.to_string e });
      raise e

let guard_fetch node fetch id =
  if not (List.mem id (Jobgraph.deps node)) then
    raise
      (Jobgraph.Invalid (Printf.sprintf "job %s fetched non-dependency %s" (Jobgraph.id node) id));
  fetch id

let sequential ~rec_ ~pace g =
  let done_ = Hashtbl.create (2 * Jobgraph.size g) in
  List.iter
    (fun node ->
      let fetch = guard_fetch node (Hashtbl.find done_) in
      Hashtbl.replace done_ (Jobgraph.id node) (run_node ~rec_ ~pace ~worker:0 ~fetch node))
    (Jobgraph.order g);
  done_

(* Shared scheduler state, all under [lock]. *)
type 'a pool = {
  lock : Mutex.t;
  wakeup : Condition.t;
  ready : 'a Jobgraph.node Queue.t;
  waiting : (string, int) Hashtbl.t;  (** unfinished dependency count per blocked node *)
  results : (string, 'a) Hashtbl.t;
  mutable failure : exn option;
  mutable unfinished : int;
}

let parallel ~rec_ ~pace ~workers g =
  let by_id = Hashtbl.create (2 * Jobgraph.size g) in
  List.iter (fun n -> Hashtbl.replace by_id (Jobgraph.id n) n) (Jobgraph.nodes g);
  let p =
    {
      lock = Mutex.create ();
      wakeup = Condition.create ();
      ready = Queue.create ();
      waiting = Hashtbl.create (2 * Jobgraph.size g);
      results = Hashtbl.create (2 * Jobgraph.size g);
      failure = None;
      unfinished = Jobgraph.size g;
    }
  in
  List.iter
    (fun node ->
      let n = List.length (Jobgraph.deps node) in
      if n = 0 then Queue.push node p.ready else Hashtbl.replace p.waiting (Jobgraph.id node) n)
    (Jobgraph.order g);
  let locked f =
    Mutex.lock p.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock p.lock) f
  in
  let finish node outcome =
    locked (fun () ->
        (match outcome with
        | Ok v ->
            Hashtbl.replace p.results (Jobgraph.id node) v;
            List.iter
              (fun d ->
                let left = Hashtbl.find p.waiting d - 1 in
                if left = 0 then begin
                  Hashtbl.remove p.waiting d;
                  Queue.push (Hashtbl.find by_id d) p.ready
                end
                else Hashtbl.replace p.waiting d left)
              (Jobgraph.dependents g (Jobgraph.id node))
        | Error e -> ( match p.failure with None -> p.failure <- Some e | Some _ -> ()));
        p.unfinished <- p.unfinished - 1;
        Condition.broadcast p.wakeup)
  in
  let worker wid () =
    let rec loop () =
      let job =
        locked (fun () ->
            let rec take () =
              if p.failure <> None || p.unfinished = 0 then None
              else
                match Queue.take_opt p.ready with
                | Some node -> Some node
                | None ->
                    Condition.wait p.wakeup p.lock;
                    take ()
            in
            take ())
      in
      match job with
      | None -> ()
      | Some node ->
          let fetch = guard_fetch node (fun id -> locked (fun () -> Hashtbl.find p.results id)) in
          (match run_node ~rec_ ~pace ~worker:wid ~fetch node with
          | v -> finish node (Ok v)
          | exception e -> finish node (Error e));
          loop ()
    in
    loop ()
  in
  let n_workers = max 1 (min workers (Jobgraph.size g)) in
  let domains = List.init (n_workers - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join domains;
  (match p.failure with Some e -> raise e | None -> ());
  p.results

let run ?(workers = 1) ?(pace = 0.0) ?(on_event = ignore) g =
  let rec_ = recorder on_event in
  let t0 = Unix.gettimeofday () in
  record rec_ (Event.Graph_start { jobs = Jobgraph.size g; workers });
  let results =
    if workers <= 1 then sequential ~rec_ ~pace g else parallel ~rec_ ~pace ~workers g
  in
  let wall = Unix.gettimeofday () -. t0 in
  record rec_ (Event.Graph_finish { jobs = Jobgraph.size g; wall_seconds = wall });
  {
    artifacts =
      List.map (fun n -> (Jobgraph.id n, Hashtbl.find results (Jobgraph.id n))) (Jobgraph.nodes g);
    wall_seconds = wall;
    events = List.rev rec_.trace;
  }
