module Telemetry = Pld_telemetry.Telemetry

type 'a result = {
  artifacts : (string * 'a) list;
  quarantined : (string * string) list;
  wall_seconds : float;
  events : Event.t list;
}

exception Job_timeout of string

(* Both the sequential and the parallel paths funnel every event
   through one recorder so traces have a single emission order. *)
type recorder = {
  rec_lock : Mutex.t;
  mutable trace : Event.t list;
  sink : Event.t -> unit;
  tele : Telemetry.t;
  run : string;  (** stamped on every span so one sink can hold many runs *)
  extra : (string * string) list;
      (** caller attributes (e.g. a request trace id) appended to every
          span and instant this run records *)
}

(* A process-wide run id distinguishes the spans of successive (or
   overlapping) executor runs recorded into the same sink: trace
   analyzers group job spans by their "run" attribute instead of
   guessing at time windows. *)
let run_ids = Atomic.make 0

let recorder ~tele ~extra sink =
  {
    rec_lock = Mutex.create ();
    trace = [];
    sink;
    tele;
    run = string_of_int (Atomic.fetch_and_add run_ids 1);
    extra;
  }

(* Mirror the structured event stream into the telemetry sink: one-off
   moments become instant marks and registry counters; the modeled
   per-phase breakdown of a finished job becomes a private modeled
   track tiled with one span per phase. (The measured wall-clock job
   spans come from [with_span] in {!run_node}, not from here.) *)
let telemetry_of_event tele ~run ~extra e =
  let bump name = Telemetry.incr (Telemetry.counter tele name) in
  match e with
  | Event.Graph_start _ | Event.Graph_finish _ | Event.Job_start _ -> ()
  | Event.Job_finish { job; kind; phases; _ } ->
      bump "engine.jobs_finished";
      if phases <> [] then begin
        let mt = Telemetry.modeled_track tele ~cat:"flow" ~name:job in
        List.iter
          (fun (phase, seconds) ->
            Telemetry.modeled_span tele mt
              ~attrs:([ ("job", job); ("kind", kind); ("run", run) ] @ extra)
              phase seconds)
          phases
      end
  | Event.Job_failed { job; kind; worker; error } ->
      bump "engine.job_failures";
      Telemetry.instant tele ~cat:"engine" ~track:worker
        ~attrs:([ ("job", job); ("kind", kind); ("error", error) ] @ extra)
        "job-failed"
  | Event.Job_retry { job; kind; worker; attempt; error } ->
      bump "engine.retries";
      Telemetry.instant tele ~cat:"engine" ~track:worker
        ~attrs:
          ([ ("job", job); ("kind", kind); ("attempt", string_of_int attempt); ("error", error) ]
          @ extra)
        "retry"
  | Event.Job_quarantined { job; kind; attempts; error } ->
      bump "engine.quarantined";
      Telemetry.instant tele ~cat:"engine"
        ~attrs:
          ([ ("job", job); ("kind", kind); ("attempts", string_of_int attempts); ("error", error) ]
          @ extra)
        "quarantined"
  | Event.Cache_hit { job; kind; source } ->
      bump "engine.cache_hits";
      Telemetry.instant tele ~cat:"engine"
        ~attrs:([ ("job", job); ("kind", kind); ("source", Event.source_name source) ] @ extra)
        "cache-hit"
  | Event.Cache_store { kind; key } ->
      bump "engine.cache_stores";
      Telemetry.instant tele ~cat:"engine"
        ~attrs:([ ("kind", kind); ("key", key) ] @ extra)
        "cache-store"

let record r e =
  Mutex.lock r.rec_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock r.rec_lock)
    (fun () ->
      r.trace <- e :: r.trace;
      telemetry_of_event r.tele ~run:r.run ~extra:r.extra e;
      r.sink e)

let pace_off ~pace ~model ~elapsed =
  if pace > 0.0 then begin
    let due = (pace *. model) -. elapsed in
    if due > 0.0 then Unix.sleepf due
  end

(* Runs one node against completed results, returning its artifact and
   emitting start/finish (failures emit and re-raise). [job_timeout]
   bounds the job's wall-clock (pacing included): a job that ran past
   it counts as failed — modeling a tool invocation killed by the
   build supervisor — and its artifact is discarded. *)
let run_node ~rec_ ~pace ~job_timeout ~worker ~fetch node =
  let id = Jobgraph.id node and kind = Jobgraph.kind node in
  record rec_ (Event.Job_start { job = id; kind; worker });
  (* The whole job body runs inside one exception-safe telemetry span
     (pacing included), so a raising job still closes its span. *)
  Telemetry.with_span rec_.tele ~cat:"engine" ~track:worker
    ~attrs:
      ([ ("kind", kind); ("run", rec_.run); ("deps", String.concat "," (Jobgraph.deps node)) ]
      @ rec_.extra)
    id (fun () ->
      let t0 = Unix.gettimeofday () in
      match Jobgraph.run node { Jobgraph.fetch; emit = record rec_; worker } with
      | v ->
          let model = Jobgraph.model node v in
          pace_off ~pace ~model ~elapsed:(Unix.gettimeofday () -. t0);
          let wall = Unix.gettimeofday () -. t0 in
          (match job_timeout with
          | Some limit when wall > limit ->
              let error = Printf.sprintf "job %s exceeded timeout (%.3fs > %.3fs)" id wall limit in
              record rec_ (Event.Job_failed { job = id; kind; worker; error });
              raise (Job_timeout error)
          | _ -> ());
          record rec_
            (Event.Job_finish
               {
                 job = id;
                 kind;
                 worker;
                 wall_seconds = wall;
                 model_seconds = model;
                 phases = Jobgraph.phases node v;
               });
          v
      | exception e ->
          record rec_ (Event.Job_failed { job = id; kind; worker; error = Printexc.to_string e });
          raise e)

(* Retry a flaky job up to [max_retries] extra attempts before giving
   it up for good. *)
let run_node_retrying ~rec_ ~pace ~job_timeout ~max_retries ~worker ~fetch node =
  let rec attempt k =
    match run_node ~rec_ ~pace ~job_timeout ~worker ~fetch node with
    | v -> Ok (v, k)
    | exception e ->
        if k < max_retries then begin
          record rec_
            (Event.Job_retry
               {
                 job = Jobgraph.id node;
                 kind = Jobgraph.kind node;
                 worker;
                 attempt = k + 1;
                 error = Printexc.to_string e;
               });
          attempt (k + 1)
        end
        else Error (e, k)
  in
  attempt 0

let guard_fetch node fetch id =
  if not (List.mem id (Jobgraph.deps node)) then
    raise
      (Jobgraph.Invalid (Printf.sprintf "job %s fetched non-dependency %s" (Jobgraph.id node) id));
  fetch id

let quarantine_event ~rec_ node ~attempts ~error =
  record rec_
    (Event.Job_quarantined { job = Jobgraph.id node; kind = Jobgraph.kind node; attempts; error })

let sequential ~rec_ ~pace ~job_timeout ~max_retries ~keep_going g =
  let done_ = Hashtbl.create (2 * Jobgraph.size g) in
  let quarantined = Hashtbl.create 4 in
  List.iter
    (fun node ->
      match
        List.find_opt (fun d -> Hashtbl.mem quarantined d) (Jobgraph.deps node)
      with
      | Some d ->
          let error = Printf.sprintf "dependency %s quarantined" d in
          Hashtbl.replace quarantined (Jobgraph.id node) error;
          quarantine_event ~rec_ node ~attempts:0 ~error
      | None -> (
          let fetch = guard_fetch node (Hashtbl.find done_) in
          match run_node_retrying ~rec_ ~pace ~job_timeout ~max_retries ~worker:0 ~fetch node with
          | Ok (v, _) -> Hashtbl.replace done_ (Jobgraph.id node) v
          | Error (e, attempts) ->
              if keep_going then begin
                let error = Printexc.to_string e in
                Hashtbl.replace quarantined (Jobgraph.id node) error;
                quarantine_event ~rec_ node ~attempts:(attempts + 1) ~error
              end
              else raise e))
    (Jobgraph.order g);
  (done_, quarantined)

(* Shared scheduler state, all under [lock]. *)
type 'a pool = {
  lock : Mutex.t;
  wakeup : Condition.t;
  ready : 'a Jobgraph.node Queue.t;
  waiting : (string, int) Hashtbl.t;  (** unfinished dependency count per blocked node *)
  results : (string, 'a) Hashtbl.t;
  quarantined : (string, string) Hashtbl.t;
  mutable failure : exn option;
  mutable unfinished : int;
}

let parallel ~rec_ ~pace ~job_timeout ~max_retries ~keep_going ~workers g =
  let by_id = Hashtbl.create (2 * Jobgraph.size g) in
  List.iter (fun n -> Hashtbl.replace by_id (Jobgraph.id n) n) (Jobgraph.nodes g);
  let p =
    {
      lock = Mutex.create ();
      wakeup = Condition.create ();
      ready = Queue.create ();
      waiting = Hashtbl.create (2 * Jobgraph.size g);
      results = Hashtbl.create (2 * Jobgraph.size g);
      quarantined = Hashtbl.create 4;
      failure = None;
      unfinished = Jobgraph.size g;
    }
  in
  List.iter
    (fun node ->
      let n = List.length (Jobgraph.deps node) in
      if n = 0 then Queue.push node p.ready else Hashtbl.replace p.waiting (Jobgraph.id node) n)
    (Jobgraph.order g);
  let locked f =
    Mutex.lock p.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock p.lock) f
  in
  (* Quarantine a node and, transitively, every dependent still waiting
     on it (they can never become ready). Caller holds the lock. *)
  let rec quarantine node ~attempts ~error =
    let id = Jobgraph.id node in
    if not (Hashtbl.mem p.quarantined id) then begin
      Hashtbl.replace p.quarantined id error;
      quarantine_event ~rec_ node ~attempts ~error;
      p.unfinished <- p.unfinished - 1;
      List.iter
        (fun d ->
          if Hashtbl.mem p.waiting d then begin
            Hashtbl.remove p.waiting d;
            quarantine (Hashtbl.find by_id d) ~attempts:0
              ~error:(Printf.sprintf "dependency %s quarantined" id)
          end)
        (Jobgraph.dependents g id)
    end
  in
  let finish node outcome =
    locked (fun () ->
        (match outcome with
        | Ok v ->
            Hashtbl.replace p.results (Jobgraph.id node) v;
            p.unfinished <- p.unfinished - 1;
            List.iter
              (fun d ->
                match Hashtbl.find_opt p.waiting d with
                | None -> ()  (* already quarantined via another dependency *)
                | Some left ->
                    if left - 1 = 0 then begin
                      Hashtbl.remove p.waiting d;
                      Queue.push (Hashtbl.find by_id d) p.ready
                    end
                    else Hashtbl.replace p.waiting d (left - 1))
              (Jobgraph.dependents g (Jobgraph.id node))
        | Error (e, attempts) ->
            if keep_going then quarantine node ~attempts ~error:(Printexc.to_string e)
            else begin
              (match p.failure with None -> p.failure <- Some e | Some _ -> ());
              p.unfinished <- p.unfinished - 1
            end);
        Condition.broadcast p.wakeup)
  in
  let worker wid () =
    let rec loop () =
      let job =
        locked (fun () ->
            let rec take () =
              if p.failure <> None || p.unfinished = 0 then None
              else
                match Queue.take_opt p.ready with
                | Some node -> Some node
                | None ->
                    Condition.wait p.wakeup p.lock;
                    take ()
            in
            take ())
      in
      match job with
      | None -> ()
      | Some node ->
          let fetch = guard_fetch node (fun id -> locked (fun () -> Hashtbl.find p.results id)) in
          (match run_node_retrying ~rec_ ~pace ~job_timeout ~max_retries ~worker:wid ~fetch node with
          | Ok (v, _) -> finish node (Ok v)
          | Error (e, attempts) -> finish node (Error (e, attempts + 1)));
          loop ()
    in
    loop ()
  in
  let n_workers = max 1 (min workers (Jobgraph.size g)) in
  let domains = List.init (n_workers - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join domains;
  (match p.failure with Some e -> raise e | None -> ());
  (p.results, p.quarantined)

let run ?(workers = 1) ?(pace = 0.0) ?job_timeout ?(max_retries = 0) ?(keep_going = false)
    ?(on_event = ignore) ?(telemetry = Telemetry.default) ?(attrs = []) g =
  let rec_ = recorder ~tele:telemetry ~extra:attrs on_event in
  let t0 = Unix.gettimeofday () in
  record rec_ (Event.Graph_start { jobs = Jobgraph.size g; workers });
  let results, quarantined =
    Telemetry.with_span telemetry ~cat:"engine"
      ~attrs:
        ([
           ("jobs", string_of_int (Jobgraph.size g));
           ("workers", string_of_int workers);
           ("run", rec_.run);
         ]
        @ attrs)
      "graph"
      (fun () ->
        if workers <= 1 then sequential ~rec_ ~pace ~job_timeout ~max_retries ~keep_going g
        else parallel ~rec_ ~pace ~job_timeout ~max_retries ~keep_going ~workers g)
  in
  let wall = Unix.gettimeofday () -. t0 in
  record rec_ (Event.Graph_finish { jobs = Jobgraph.size g; wall_seconds = wall });
  {
    artifacts =
      List.filter_map
        (fun n ->
          Option.map (fun v -> (Jobgraph.id n, v)) (Hashtbl.find_opt results (Jobgraph.id n)))
        (Jobgraph.nodes g);
    quarantined =
      List.filter_map
        (fun n ->
          Option.map
            (fun e -> (Jobgraph.id n, e))
            (Hashtbl.find_opt quarantined (Jobgraph.id n)))
        (Jobgraph.nodes g);
    wall_seconds = wall;
    events = List.rev rec_.trace;
  }
