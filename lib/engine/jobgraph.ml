module Topo = Pld_util.Topo

exception Invalid of string

type 'a ctx = { fetch : string -> 'a; emit : Event.t -> unit; worker : int }

type 'a node = {
  id : string;
  kind : string;
  deps : string list;
  model : 'a -> float;
  phases : 'a -> (string * float) list;
  run : 'a ctx -> 'a;
}

let node ~id ~kind ?(deps = []) ?(model = fun _ -> 0.0) ?(phases = fun _ -> []) run =
  { id; kind; deps; model; phases; run }

let id n = n.id
let kind n = n.kind
let deps n = n.deps
let model n = n.model
let phases n = n.phases
let run n = n.run

type 'a t = {
  list : 'a node list;
  index : (string, int) Hashtbl.t;  (** id -> position in [list] *)
  topo : 'a node list;
  deps_of : (string, string list) Hashtbl.t;  (** id -> dependent ids *)
}

let make nodes =
  let n = List.length nodes in
  let index = Hashtbl.create (2 * n) in
  List.iteri
    (fun i node ->
      if Hashtbl.mem index node.id then raise (Invalid ("duplicate job id " ^ node.id));
      Hashtbl.add index node.id i)
    nodes;
  let arr = Array.of_list nodes in
  let edges =
    List.concat_map
      (fun node ->
        List.map
          (fun d ->
            match Hashtbl.find_opt index d with
            | Some i -> (i, Hashtbl.find index node.id)
            | None -> raise (Invalid (Printf.sprintf "job %s depends on unknown %s" node.id d)))
          node.deps)
      nodes
  in
  let topo =
    match Topo.sort ~n ~edges with
    | order -> List.map (fun i -> arr.(i)) order
    | exception Topo.Cycle cycle ->
        raise
          (Invalid
             ("dependency cycle: "
             ^ String.concat " -> " (List.map (fun i -> arr.(i).id) cycle)))
  in
  let deps_of = Hashtbl.create (2 * n) in
  List.iter
    (fun node ->
      List.iter
        (fun d -> Hashtbl.replace deps_of d (node.id :: Option.value ~default:[] (Hashtbl.find_opt deps_of d)))
        node.deps)
    nodes;
  (* Restore submission order among dependents. *)
  Hashtbl.iter
    (fun k v -> Hashtbl.replace deps_of k (List.sort (fun a b -> compare (Hashtbl.find index a) (Hashtbl.find index b)) v))
    deps_of;
  { list = nodes; index; topo; deps_of }

let size t = List.length t.list
let nodes t = t.list
let order t = t.topo
let dependents t id = Option.value ~default:[] (Hashtbl.find_opt t.deps_of id)
