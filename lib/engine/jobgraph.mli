(** Typed build-job graphs.

    A node is one unit of compilation work — an HLS run, a page
    assignment, a per-operator page compile, a monolithic compile —
    keyed by a stable id and carrying explicit dependency edges (the
    HLS result feeds page assignment feeds P&R). The executor runs
    ready nodes concurrently; a node reads its dependencies' artifacts
    through the context it receives.

    All nodes of one graph produce the same artifact type ['a]
    (clients use a variant when layers differ). *)

exception Invalid of string
(** Raised by {!make} on duplicate ids, unknown dependencies, or
    dependency cycles. *)

type 'a ctx = {
  fetch : string -> 'a;
      (** [fetch id] is the artifact of completed dependency [id];
          raises [Invalid] if [id] is not a dependency of this node. *)
  emit : Event.t -> unit;
      (** Inject an event (e.g. a cache hit) into the run's trace. *)
  worker : int;  (** index of the worker domain running this node *)
}

type 'a node

val node :
  id:string ->
  kind:string ->
  ?deps:string list ->
  ?model:('a -> float) ->
  ?phases:('a -> (string * float) list) ->
  ('a ctx -> 'a) ->
  'a node
(** [model] and [phases] report the modeled backend-tool cost of the
    produced artifact (for {!Event.Job_finish} and for pacing); both
    default to zero. *)

val id : 'a node -> string
val kind : 'a node -> string
val deps : 'a node -> string list
val model : 'a node -> 'a -> float
val phases : 'a node -> 'a -> (string * float) list
val run : 'a node -> 'a ctx -> 'a

type 'a t

val make : 'a node list -> 'a t
(** Validates and freezes the graph. *)

val size : 'a t -> int

val nodes : 'a t -> 'a node list
(** In submission order. *)

val order : 'a t -> 'a node list
(** A dependency-respecting (topological) order, stable with respect to
    submission order among independent nodes — the sequential execution
    order. *)

val dependents : 'a t -> string -> string list
(** Nodes that list the given id as a dependency. *)
