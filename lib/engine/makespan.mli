(** The analytic cluster model: longest-processing-time list
    scheduling of independent job durations onto [workers] machines —
    the §7.1 Slurm-cluster bound the paper's Fig. 9 reports. This is a
    *model* number for comparing against the paper; the measured
    counterpart is {!Executor.run}'s wall clock. *)

val lpt : workers:int -> float list -> float
(** [lpt ~workers durations] is the makespan of the LPT greedy
    schedule: at most [4/3 - 1/(3*workers)] of optimal, never less
    than the longest single duration, never more than the serial sum,
    and exactly the serial sum when [workers = 1].
    Raises [Invalid_argument] when [workers < 1]. *)

val lpt_critical : workers:int -> (string * float) list -> float * string list
(** Same schedule over named durations, additionally returning the
    jobs the model places on the machine that sets the makespan — the
    modeled "critical machine" a trace analyzer reports against the
    measured critical path. Jobs come back in LPT assignment order
    (longest first); the makespan equals [lpt] over the same
    durations. Raises [Invalid_argument] when [workers < 1]. *)
