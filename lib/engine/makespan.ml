let lpt ~workers durations =
  if workers < 1 then invalid_arg "Makespan.lpt: need at least one worker";
  let loads = Array.make workers 0.0 in
  let sorted = List.sort (fun a b -> compare b a) durations in
  List.iter
    (fun d ->
      let best = ref 0 in
      Array.iteri (fun i l -> if l < loads.(!best) then best := i) loads;
      loads.(!best) <- loads.(!best) +. d)
    sorted;
  Array.fold_left Float.max 0.0 loads

let lpt_critical ~workers named =
  if workers < 1 then invalid_arg "Makespan.lpt_critical: need at least one worker";
  let loads = Array.make workers 0.0 in
  let jobs = Array.make workers [] in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) named in
  List.iter
    (fun (name, d) ->
      let best = ref 0 in
      Array.iteri (fun i l -> if l < loads.(!best) then best := i) loads;
      loads.(!best) <- loads.(!best) +. d;
      jobs.(!best) <- name :: jobs.(!best))
    sorted;
  let best = ref 0 in
  Array.iteri (fun i l -> if l > loads.(!best) then best := i) loads;
  (loads.(!best), List.rev jobs.(!best))
