(** Typed trace events emitted by the build engine.

    Every interesting moment of a build — a job starting on a worker, a
    job finishing with its measured and modeled durations, an artifact
    served from the cache — is a constructor here. Consumers (the
    [pldc] driver, the bench harness, tests) subscribe with an
    [on_event] callback or read the collected trace from the build
    report; this replaces threading ad-hoc [phase_times] tuples through
    every layer of the compile stack. *)

type source =
  | Memory  (** hit in the in-process table *)
  | Disk  (** hit in the persistent artifact store *)

type t =
  | Graph_start of { jobs : int; workers : int }
      (** a job graph was submitted: [jobs] nodes on [workers] domains *)
  | Graph_finish of { jobs : int; wall_seconds : float }
  | Job_start of { job : string; kind : string; worker : int }
  | Job_finish of {
      job : string;
      kind : string;
      worker : int;
      wall_seconds : float;  (** measured wall-clock of this job *)
      model_seconds : float;  (** modeled backend-tool time of the artifact *)
      phases : (string * float) list;  (** modeled per-phase breakdown *)
    }
  | Job_failed of { job : string; kind : string; worker : int; error : string }
  | Job_retry of { job : string; kind : string; worker : int; attempt : int; error : string }
      (** the executor is re-running a failed job ([attempt] retries so far) *)
  | Job_quarantined of { job : string; kind : string; attempts : int; error : string }
      (** retries exhausted (or a dependency was quarantined); the rest
          of the build continues without this job's artifact *)
  | Cache_hit of { job : string; kind : string; source : source }
  | Cache_store of { kind : string; key : string }
      (** an artifact was persisted to the on-disk store *)

val to_string : t -> string
(** One human-readable line, used by [pldc --trace]. *)

val source_name : source -> string
(** ["memory"] or ["disk"] — the label exporters attach to cache hits. *)

val pp : Format.formatter -> t -> unit

(** {2 Trace aggregation} *)

val phase_totals : t list -> (string * float) list
(** Sum of the modeled phase durations over every [Job_finish], in
    first-appearance order of the phase names. *)

val cache_hits : t list -> int
(** Number of [Cache_hit] events. *)

val finished : t list -> int
(** Number of [Job_finish] events. *)

val by_kind : t list -> (string * int * int) list
(** Per job kind: [(kind, hits, misses)], in first-appearance order. A
    hit is a [Cache_hit]; a miss is a [Job_finish] not explained by a
    hit (i.e. the job had to do its work). *)

val strip_timing : t -> t
(** The event with all timing fields zeroed (measured wall-clock, the
    worker index, and the modeled durations, which are derived from
    measured simulator runtime and so also vary run to run) — what
    determinism tests compare between a sequential and a parallel run
    of the same graph. *)
