(** Content-addressed persistent artifact store.

    Compiled artifacts are serialized to digest-named files under a
    cache directory so a fresh [pldc] process after a one-operator edit
    recompiles exactly one page and reads everything else from disk —
    the separate-compilation payoff of §6 made durable across runs.

    Layout: one file per artifact, named [<kind>-<key>.art], where
    [kind] partitions the namespace by artifact type (a page bitstream
    can never be confused with a softcore image, whatever the key) and
    [key] is the content digest of the inputs that produced it.

    Entries are never trusted: every file carries a versioned header
    with the payload's own digest, and anything that fails validation —
    wrong magic, older store version, digest mismatch, truncation — is
    evicted (deleted) and treated as a miss. All operations are
    thread-safe and may be called from executor worker domains. *)

type t

exception Store_error of string
(** Raised when the cache directory cannot be created or written. *)

val version : int
(** Current on-disk format version. Bump on any layout change; entries
    written by other versions are evicted on open. *)

val open_ : dir:string -> t
(** Opens (creating if needed) the store rooted at [dir] and sweeps
    invalid or stale entries. *)

val dir : t -> string

val find : t -> kind:string -> key:Pld_util.Digest_lite.t -> 'a option
(** [find t ~kind ~key] deserializes the stored artifact, or [None] on
    miss or eviction. The result type ['a] is whatever was [put] under
    this [kind]; callers must dedicate each kind to exactly one
    artifact type (the typed accessors in [Build] enforce this). *)

val put : t -> kind:string -> key:Pld_util.Digest_lite.t -> 'a -> unit
(** Serializes the artifact (atomically: temp file + rename). The value
    must be closure-free. *)

val mem : t -> kind:string -> key:Pld_util.Digest_lite.t -> bool
(** Header-only check, without deserializing the payload. *)

val count : t -> int
(** Number of valid entries currently on disk. *)

val clear : t -> unit
(** Removes every entry (but keeps the directory). *)
