(** Content-addressed persistent artifact store.

    Compiled artifacts are serialized to digest-named files under a
    cache directory so a fresh [pldc] process after a one-operator edit
    recompiles exactly one page and reads everything else from disk —
    the separate-compilation payoff of §6 made durable across runs.

    Layout: one file per artifact, named [<kind>-<key>.art], where
    [kind] partitions the namespace by artifact type (a page bitstream
    can never be confused with a softcore image, whatever the key) and
    [key] is the content digest of the inputs that produced it. Next to
    the entries live two bookkeeping files: [store.lock], the
    inter-process lock, and [store.index], the persisted access-time
    index driving LRU eviction.

    Entries are never trusted: every file carries a versioned header
    with the payload's own digest, and anything that fails validation —
    wrong magic, older store version, digest mismatch, truncation — is
    evicted (deleted) and treated as a miss.

    {b Concurrency.} All operations are safe from multiple domains of
    one process (a mutex per handle) {e and} from multiple processes
    sharing one directory (an [fcntl] record lock on [store.lock] held
    for the duration of each operation). Entry writes are atomic
    (unique temp file + rename), so a reader never observes a partial
    entry; orphaned temp files left by a crash mid-serialize are swept
    on the next {!open_}. Within one process, share a single handle per
    directory — two handles in the same process fall back to atomic
    renames only (POSIX record locks do not exclude the owning
    process), which keeps entries intact but can lose index updates.

    {b Eviction.} With [max_bytes] set, every write re-checks the
    budget and evicts least-recently-used entries (by the persisted
    access stamps, so LRU order survives across processes and restarts)
    until the file-byte total fits. The entry just written is never its
    own victim. *)

type t

exception Store_error of string
(** Raised when the cache directory cannot be created or written. *)

val version : int
(** Current on-disk format version. Bump on any layout change; entries
    written by other versions are evicted on open. *)

val open_ :
  ?max_bytes:int ->
  ?quarantine:bool ->
  ?telemetry:Pld_telemetry.Telemetry.t ->
  dir:string ->
  unit ->
  t
(** Opens (creating if needed) the store rooted at [dir], sweeps
    invalid or stale entries and orphaned [*.tmp] files, and loads the
    access-time index. [max_bytes] (default: unbounded) is the LRU
    size budget over payload bytes. With [quarantine] (default
    [false]), entries failing validation — at the open sweep or at any
    later [find] — are moved into [store.quarantine/] instead of
    deleted, preserving the torn bytes for post-mortem while the live
    store sees a clean miss. [telemetry] (default
    {!Pld_telemetry.Telemetry.default}) receives the per-kind
    hit/miss/eviction/put counters ([store.<kind>.hits], ...), the
    [store.quarantined] counter and the [store.bytes] /
    [store.entries] gauges. *)

val dir : t -> string

val max_bytes : t -> int option

val quarantine_dir : t -> string
(** Where quarantined entries land ([<dir>/store.quarantine]). The
    directory is created lazily on first quarantine. *)

val find : t -> kind:string -> key:Pld_util.Digest_lite.t -> 'a option
(** [find t ~kind ~key] deserializes the stored artifact, or [None] on
    miss or eviction. A hit refreshes the entry's LRU stamp. The result
    type ['a] is whatever was [put] under this [kind]; callers must
    dedicate each kind to exactly one artifact type (the typed
    accessors in [Build] enforce this). *)

val put : t -> kind:string -> key:Pld_util.Digest_lite.t -> 'a -> unit
(** Serializes the artifact (atomically: unique temp file + rename),
    stamps it most-recently-used, and enforces the size budget. The
    value must be closure-free. *)

val mem : t -> kind:string -> key:Pld_util.Digest_lite.t -> bool
(** Header-only check, without deserializing the payload. Counts and
    stamps like a {!find}. *)

val entries : t -> (string * string) list
(** [(kind, key)] of every well-named entry currently on disk. *)

val count : t -> int
(** Number of valid entries currently on disk. *)

val clear : t -> unit
(** Removes every entry (but keeps the directory and bookkeeping
    files). *)

(** {2 Scrub}

    The recovery half of crash tolerance: writes are atomic, but a
    SIGKILL between the rename and the index update — or bit rot, or a
    truncating filesystem — can leave entries whose header no longer
    matches their payload. A scrub re-validates every entry on demand
    and quarantines the failures, so the worst a torn write can do is
    cost one cache miss. *)

type scrub_report = {
  sc_scanned : int;  (** entry files examined *)
  sc_ok : int;  (** entries whose header and payload digest check out *)
  sc_quarantined : int;  (** entries moved to [store.quarantine/] *)
  sc_quarantine_dir : string;
}

val scrub : t -> scrub_report
(** Re-reads and re-digests every entry file under the store lock.
    Entries failing validation (and malformed [.art] names) move to
    [store.quarantine/] — regardless of the handle's [quarantine] open
    mode — and orphaned [*.tmp] files are deleted. Each quarantined
    entry bumps the [store.quarantined] telemetry counter. *)

val render_scrub : scrub_report -> string

(** {2 Statistics}

    Counters are cumulative over the handle's lifetime; sizes reflect
    the index (i.e. what is on disk now, as this handle last saw it). *)

type kind_stats = {
  ks_kind : string;
  ks_entries : int;  (** entries of this kind on disk *)
  ks_bytes : int;  (** file bytes of this kind on disk *)
  ks_hits : int;  (** [find]/[mem] served from a valid entry *)
  ks_misses : int;  (** [find]/[mem] that found nothing usable *)
  ks_puts : int;  (** artifacts written *)
  ks_evictions : int;
      (** entries this handle deleted — LRU budget victims plus
          validation failures *)
}

type stats = {
  s_entries : int;
  s_bytes : int;  (** file bytes on disk *)
  s_kinds : kind_stats list;  (** first-use order *)
}

val stats : t -> stats

val render_stats : stats -> string list
(** One aligned line per kind plus a totals line — what
    [pldd]'s stats endpoint and the tests print. *)
