(** Parallel job-graph executor.

    Runs the ready frontier of a {!Jobgraph.t} on a pool of OCaml 5
    domains (bounded by [workers]) and measures real wall-clock — the
    number the paper's Fig. 9 cluster model ({!Makespan.lpt}) only
    predicts. With [workers = 1] no domain is spawned and nodes run
    sequentially on the calling domain in {!Jobgraph.order}; parallel
    and sequential runs produce identical artifacts (jobs must be
    deterministic, which seeded P&R is), differing only in wall-clock
    fields and event interleaving.

    [pace] throttles each job to [pace *. model] wall seconds (sleeping
    off whatever its real compute did not use). The simulator's real
    compute is microseconds-scale while the modeled vendor-tool time it
    stands for is minutes-scale; pacing makes measured wall-clock
    reflect concurrent execution of those modeled tool invocations —
    including on a single-core host, where a blocked "tool run" still
    overlaps with others. [pace = 0.] (default) disables throttling.

    Robustness: a flaky job (transient tool crash) can be retried
    ([max_retries]) and, with [keep_going], a job that still fails is
    *quarantined* — it and its transitive dependents are skipped, every
    other job completes, and the result names the casualties — so one
    bad compile does not kill a 50-page build. *)

type 'a result = {
  artifacts : (string * 'a) list;
      (** completed nodes' artifacts, in submission order (quarantined
          nodes are absent) *)
  quarantined : (string * string) list;
      (** [(job, error)] for every skipped node, in submission order;
          empty unless [keep_going] swallowed failures *)
  wall_seconds : float;  (** measured, whole graph *)
  events : Event.t list;  (** in emission order *)
}

exception Job_timeout of string
(** A job exceeded [job_timeout] wall seconds — the supervisor killed
    the (modeled) tool run. Subject to retry like any other failure. *)

val run :
  ?workers:int ->
  ?pace:float ->
  ?job_timeout:float ->
  ?max_retries:int ->
  ?keep_going:bool ->
  ?on_event:(Event.t -> unit) ->
  ?telemetry:Pld_telemetry.Telemetry.t ->
  ?attrs:(string * string) list ->
  'a Jobgraph.t ->
  'a result
(** Executes the graph to completion. [on_event] (default ignore)
    additionally streams each event as it is emitted; it is called
    under the trace lock and so must not itself run the executor.

    [attrs] (default empty) is appended to the attributes of every
    telemetry span and instant this run records — the graph span, the
    per-job spans, the modeled phase spans, and the cache/retry
    instants. The service uses it to stamp a request's trace id onto
    the whole build, so one distributed trace stitches the client RPC
    to the tool phases it paid for.

    [telemetry] (default {!Pld_telemetry.Telemetry.default}) receives
    the run as spans and metrics: a ["graph"] span over the whole run,
    one exception-safe wall-clock span per job attempt on the worker's
    track, instants for retries/failures/quarantines/cache traffic,
    modeled per-phase spans for each finished job, and counters
    ([engine.jobs_finished], [engine.cache_hits], ...). Every span of
    one run — the graph span, the per-job spans, and the modeled phase
    spans — carries a ["run"] attribute holding a process-unique run
    id, and each job span carries its dependency list in a ["deps"]
    attribute (comma-joined job ids, [""] for roots), so an analyzer
    reading a shared sink can select one run's spans and rebuild the
    job DAG without re-running the build (see [Pld_insight]).

    [job_timeout] (wall seconds, pacing included) fails jobs that run
    past it. [max_retries] (default 0) re-runs a failed job that many
    extra times, emitting [Job_retry] events. [keep_going] (default
    false) quarantines jobs whose retries are exhausted instead of
    aborting: the failure is recorded ([Job_quarantined]), dependents
    are skipped, and the run returns normally with the survivors.

    Without [keep_going]: if a job ultimately fails, no new jobs start,
    in-flight jobs finish, and the original exception is re-raised on
    the calling domain after the pool quiesces. *)
