(** Parallel job-graph executor.

    Runs the ready frontier of a {!Jobgraph.t} on a pool of OCaml 5
    domains (bounded by [workers]) and measures real wall-clock — the
    number the paper's Fig. 9 cluster model ({!Makespan.lpt}) only
    predicts. With [workers = 1] no domain is spawned and nodes run
    sequentially on the calling domain in {!Jobgraph.order}; parallel
    and sequential runs produce identical artifacts (jobs must be
    deterministic, which seeded P&R is), differing only in wall-clock
    fields and event interleaving.

    [pace] throttles each job to [pace *. model] wall seconds (sleeping
    off whatever its real compute did not use). The simulator's real
    compute is microseconds-scale while the modeled vendor-tool time it
    stands for is minutes-scale; pacing makes measured wall-clock
    reflect concurrent execution of those modeled tool invocations —
    including on a single-core host, where a blocked "tool run" still
    overlaps with others. [pace = 0.] (default) disables throttling. *)

type 'a result = {
  artifacts : (string * 'a) list;  (** every node's artifact, in submission order *)
  wall_seconds : float;  (** measured, whole graph *)
  events : Event.t list;  (** in emission order *)
}

val run :
  ?workers:int -> ?pace:float -> ?on_event:(Event.t -> unit) -> 'a Jobgraph.t -> 'a result
(** Executes the graph to completion. [on_event] (default ignore)
    additionally streams each event as it is emitted; it is called
    under the trace lock and so must not itself run the executor.

    If a job raises, no new jobs start, in-flight jobs finish, and the
    original exception is re-raised on the calling domain after the
    pool quiesces. *)
