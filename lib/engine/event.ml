type source = Memory | Disk

type t =
  | Graph_start of { jobs : int; workers : int }
  | Graph_finish of { jobs : int; wall_seconds : float }
  | Job_start of { job : string; kind : string; worker : int }
  | Job_finish of {
      job : string;
      kind : string;
      worker : int;
      wall_seconds : float;
      model_seconds : float;
      phases : (string * float) list;
    }
  | Job_failed of { job : string; kind : string; worker : int; error : string }
  | Job_retry of { job : string; kind : string; worker : int; attempt : int; error : string }
  | Job_quarantined of { job : string; kind : string; attempts : int; error : string }
  | Cache_hit of { job : string; kind : string; source : source }
  | Cache_store of { kind : string; key : string }

let source_name = function Memory -> "memory" | Disk -> "disk"

let to_string = function
  | Graph_start { jobs; workers } -> Printf.sprintf "graph-start %d jobs on %d workers" jobs workers
  | Graph_finish { jobs; wall_seconds } ->
      Printf.sprintf "graph-finish %d jobs in %.4fs wall" jobs wall_seconds
  | Job_start { job; kind; worker } -> Printf.sprintf "start  [w%d] %-9s %s" worker kind job
  | Job_finish { job; kind; worker; wall_seconds; model_seconds; phases } ->
      Printf.sprintf "finish [w%d] %-9s %s (wall %.4fs, model %.2fs%s)" worker kind job wall_seconds
        model_seconds
        (if phases = [] then ""
         else
           "; "
           ^ String.concat " "
               (List.map (fun (n, s) -> Printf.sprintf "%s=%.2f" n s) phases))
  | Job_failed { job; kind; worker; error } ->
      Printf.sprintf "FAILED [w%d] %-9s %s: %s" worker kind job error
  | Job_retry { job; kind; worker; attempt; error } ->
      Printf.sprintf "retry  [w%d] %-9s %s (attempt %d after: %s)" worker kind job attempt error
  | Job_quarantined { job; kind; attempts; error } ->
      Printf.sprintf "QUARANTINED %-9s %s after %d attempts: %s" kind job attempts error
  | Cache_hit { job; kind; source } ->
      Printf.sprintf "hit    [%s] %-9s %s" (source_name source) kind job
  | Cache_store { kind; key } -> Printf.sprintf "store  %-9s %s" kind key

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* Accumulate into an assoc list preserving first-appearance order. *)
let bump keys f key =
  match List.assoc_opt key !keys with
  | Some cell -> f cell
  | None ->
      let cell = ref (0, 0, 0.0) in
      keys := !keys @ [ (key, cell) ];
      f cell

let phase_totals events =
  let keys = ref [] in
  List.iter
    (function
      | Job_finish { phases; _ } ->
          List.iter
            (fun (name, s) -> bump keys (fun c -> let h, m, t = !c in c := (h, m, t +. s)) name)
            phases
      | _ -> ())
    events;
  List.map (fun (name, cell) -> let _, _, t = !cell in (name, t)) !keys

let cache_hits events =
  List.length (List.filter (function Cache_hit _ -> true | _ -> false) events)

let finished events =
  List.length (List.filter (function Job_finish _ -> true | _ -> false) events)

let by_kind events =
  let keys = ref [] in
  List.iter
    (function
      | Cache_hit { kind; _ } -> bump keys (fun c -> let h, m, t = !c in c := (h + 1, m, t)) kind
      | Job_finish { kind; _ } -> bump keys (fun c -> let h, m, t = !c in c := (h, m + 1, t)) kind
      | _ -> ())
    events;
  (* A job that hit the cache still finishes; a miss is a finish that
     produced no hit event. *)
  List.map (fun (kind, cell) -> let h, m, _ = !cell in (kind, h, max 0 (m - h))) !keys

let strip_timing = function
  | Graph_finish f -> Graph_finish { f with wall_seconds = 0.0 }
  | Job_finish f ->
      Job_finish { f with wall_seconds = 0.0; worker = 0; model_seconds = 0.0; phases = [] }
  | Job_start s -> Job_start { s with worker = 0 }
  | Job_failed f -> Job_failed { f with worker = 0 }
  | Job_retry r -> Job_retry { r with worker = 0 }
  | (Graph_start _ | Job_quarantined _ | Cache_hit _ | Cache_store _) as e -> e
