open Pld_ir

type result = {
  outputs : (string * Value.t list) list;
  channel_stats : Network.channel_stats list;
  op_counters : (string * Interp.counters) list;
  printed : (string * string) list;
}

(* Registration order is the scheduler's round-robin order; [order]
   lets the differential tests prove the Kahn property (outputs do not
   depend on it). Unlisted instances keep their graph order, after the
   listed ones. *)
let ordered_instances ?order (g : Graph.t) =
  match order with
  | None -> g.Graph.instances
  | Some names ->
      let listed =
        List.filter_map (fun n -> List.find_opt (fun i -> i.Graph.inst_name = n) g.instances) names
      in
      let rest = List.filter (fun i -> not (List.mem i.Graph.inst_name names)) g.instances in
      listed @ rest

let run ?fuel ?(rounds = 1) ?(processor = false) ?order ?pmu ?(rates = []) (g : Graph.t) ~inputs =
  Validate.check_graph_exn g;
  let module Telemetry = Pld_telemetry.Telemetry in
  Telemetry.with_span Telemetry.default ~cat:"cosim"
    ~attrs:
      [
        ("instances", string_of_int (List.length g.instances));
        ("rounds", string_of_int rounds);
      ]
    ("run:" ^ g.graph_name)
  @@ fun () ->
  let net = Network.create ?pmu () in
  let channels = Hashtbl.create 16 in
  List.iter
    (fun (c : Graph.channel) ->
      (* Graph outputs accumulate the full result; internal channels and
         inputs keep their declared bounded depth (inputs are preloaded
         with [push], which ignores capacity, mirroring host DMA that
         streams in as space frees up). *)
      let capacity = if List.mem c.chan_name g.outputs then max_int else c.depth in
      Hashtbl.replace channels c.chan_name (Network.channel net ~capacity ~name:c.chan_name c.elem))
    g.channels;
  let chan name = Hashtbl.find channels name in
  (* Unprofiled runs preload the whole workload ([push] ignores
     capacity — host DMA modeled as infinitely fast). A profiled run
     instead streams each input through a host DMA process that
     respects the channel's declared hardware depth, so back-pressure
     against the host is observable in the stall counters — by the
     Kahn property the outputs are identical either way. *)
  List.iter
    (fun (name, values) ->
      match Hashtbl.find_opt channels name with
      | None -> invalid_arg ("Run_graph.run: unknown input channel " ^ name)
      | Some c -> (
          match pmu with
          | None -> List.iter (Network.push c) values
          | Some _ ->
              Network.add_process net ~name:("host-dma-in:" ^ name) (fun () ->
                  List.iter (Network.write c) values)))
    inputs;
  let printed = ref [] in
  (* Relative service rates: [rates] gives each instance its modeled
     cycles-per-firing (the HLS schedule's number); an instance [k]
     times slower than the fastest yields [k-1] extra scheduler rounds
     per token consumed. This turns the untimed round-robin scheduler
     into a rate-correct one, so the stall counters reproduce the
     queueing signature of the modeled fabric — a full input queue
     upstream of the slow operator, starvation downstream of it.
     Outputs are unchanged by the Kahn property. *)
  let pace =
    match List.filter (fun (_, c) -> c > 0) rates with
    | [] -> fun _ -> 1
    | positive ->
        let fastest = List.fold_left (fun a (_, c) -> min a c) max_int positive in
        fun name ->
          (match List.assoc_opt name rates with
          | Some c when c > 0 -> max 1 ((c + (fastest / 2)) / fastest)
          | _ -> 1)
  in
  let counters =
    List.map
      (fun (i : Graph.instance) ->
        let c = Interp.fresh_counters () in
        let p = pace i.Graph.inst_name in
        let io : Interp.io =
          {
            read =
              (fun port ->
                let v = Network.read (chan (List.assoc port i.bindings)) in
                (* Pacing yields model compute time, not blocking — they
                   count as progress so they can't trip the deadlock
                   detector while every peer happens to be waiting. *)
                for _ = 2 to p do
                  Network.note_progress net;
                  Network.yield ()
                done;
                v);
            write = (fun port v -> Network.write (chan (List.assoc port i.bindings)) v);
            printf =
              (fun msg args ->
                let text =
                  msg ^ String.concat "" (List.map (fun v -> " " ^ Value.to_string v) args)
                in
                printed := (i.inst_name, text) :: !printed);
          }
        in
        Network.add_process net ~name:i.inst_name (fun () ->
            for _ = 1 to rounds do
              Interp.run_operator ~processor ~counters:c i.op io
            done);
        (i.inst_name, c))
      (ordered_instances ?order g)
  in
  Network.run ?fuel net;
  let outputs = List.map (fun name -> (name, Network.drain (chan name))) g.outputs in
  { outputs; channel_stats = Network.stats net; op_counters = counters; printed = List.rev !printed }

let run_words ?fuel ?rounds g ~inputs =
  let to_vals l = List.map (fun x -> Value.of_int Dtype.word x) l in
  let r =
    run ?fuel ?rounds g ~inputs:(List.map (fun (n, l) -> (n, to_vals l)) inputs)
  in
  List.map (fun (n, vs) -> (n, List.map Value.to_int vs)) r.outputs
