open Pld_ir
module Telemetry = Pld_telemetry.Telemetry
module Log = Pld_telemetry.Log
module Pmu = Pld_telemetry.Pmu

type _ Effect.t += Yield : unit Effect.t

type channel = {
  chan_name : string;
  elem : Dtype.t;
  capacity : int;
  buf : Value.t Queue.t;
  net : net;
  mutable tokens : int;
  mutable peak : int;
  mutable read_blocks : int;
  mutable write_blocks : int;
  pmu_read : Pmu.series option;
  pmu_write : Pmu.series option;
  pmu_occ : Pmu.series option;
}

and net = { mutable progress : int; mutable channels : channel list; mutable round : int }

type t = {
  net : net;
  mutable procs : (string * (unit -> unit)) list;
  tele : Telemetry.t;
  pmu : Pmu.t option;
}

exception Deadlock of string list
exception Out_of_fuel of { steps : int; live : string list }

let create ?(telemetry = Telemetry.default) ?pmu () =
  { net = { progress = 0; channels = []; round = 0 }; procs = []; tele = telemetry; pmu }

let channel t ?(capacity = 16) ~name elem =
  if capacity < 1 then invalid_arg "Network.channel: capacity must be >= 1";
  let pmu_series suffix unit_ =
    Option.map (fun p -> Pmu.series p ~unit_ ("kpn.chan." ^ name ^ "." ^ suffix)) t.pmu
  in
  let c =
    {
      chan_name = name;
      elem;
      capacity;
      buf = Queue.create ();
      net = t.net;
      tokens = 0;
      peak = 0;
      read_blocks = 0;
      write_blocks = 0;
      pmu_read = pmu_series "stall_read" "stalls";
      pmu_write = pmu_series "stall_write" "stalls";
      pmu_occ = pmu_series "occupancy" "tokens";
    }
  in
  t.net.channels <- c :: t.net.channels;
  c

let enqueue c v =
  Queue.push v c.buf;
  c.tokens <- c.tokens + 1;
  c.peak <- max c.peak (Queue.length c.buf);
  c.net.progress <- c.net.progress + 1

let read c =
  while Queue.is_empty c.buf do
    c.read_blocks <- c.read_blocks + 1;
    (match c.pmu_read with Some s -> Pmu.add s ~cycle:c.net.round 1.0 | None -> ());
    Effect.perform Yield
  done;
  let v = Queue.pop c.buf in
  c.net.progress <- c.net.progress + 1;
  v

let write c v =
  while Queue.length c.buf >= c.capacity do
    c.write_blocks <- c.write_blocks + 1;
    (match c.pmu_write with Some s -> Pmu.add s ~cycle:c.net.round 1.0 | None -> ());
    Effect.perform Yield
  done;
  enqueue c v

let yield () = Effect.perform Yield

let note_progress (t : t) = t.net.progress <- t.net.progress + 1

let try_read c =
  if Queue.is_empty c.buf then None
  else begin
    let v = Queue.pop c.buf in
    c.net.progress <- c.net.progress + 1;
    Some v
  end
let try_write c v =
  if Queue.length c.buf >= c.capacity then false
  else begin
    enqueue c v;
    true
  end

let push c v = enqueue c v

let drain c =
  let out = ref [] in
  while not (Queue.is_empty c.buf) do
    out := Queue.pop c.buf :: !out
  done;
  List.rev !out

let occupancy c = Queue.length c.buf
let channel_name c = c.chan_name
let elem_type c = c.elem

let add_process t ~name body = t.procs <- (name, body) :: t.procs

type outcome = Finished | Yielded of (unit, outcome) Effect.Deep.continuation

let start body () =
  Effect.Deep.match_with body ()
    {
      retc = (fun () -> Finished);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield -> Some (fun (k : (a, outcome) Effect.Deep.continuation) -> Yielded k)
          | _ -> None);
    }

(* Per-process cap on recorded firing spans: a long cosim fires each
   instance millions of times; the first firings carry the shape of the
   schedule, the rest would only blow up the trace. *)
let firing_span_budget = 256

let run ?(fuel = 50_000_000) t =
  let live = Queue.create () in
  List.iter (fun (name, body) -> Queue.push (name, start body) live) (List.rev t.procs);
  let steps = ref 0 in
  (* Satellite: the span budget used to clip silently. Every dropped
     firing span is now counted, and the first one per run leaves a
     structured breadcrumb pointing at the counter. *)
  let dropped_spans = Telemetry.counter t.tele "kpn.spans_dropped" in
  let warned_drop = ref false in
  (* One cosim track per process instance; firing spans land on it.
     The third slot is the PMU firing series (rounds clock). *)
  let tracks = Hashtbl.create 8 in
  let track_of name =
    match Hashtbl.find_opt tracks name with
    | Some tr -> tr
    | None ->
        let fire =
          Option.map (fun p -> Pmu.series p ~unit_:"firings" ("kpn.proc." ^ name ^ ".firings")) t.pmu
        in
        let tr = (Telemetry.alloc_track t.tele ~cat:"cosim" name, ref 0, fire) in
        Hashtbl.replace tracks name tr;
        tr
  in
  (* A "round" visits every live process once; if no token moved during
     a round and nothing finished, the network is deadlocked. *)
  let rec loop () =
    if Queue.is_empty live then ()
    else begin
      let round = Queue.length live in
      let before = t.net.progress in
      let finished = ref false in
      for _ = 1 to round do
        let name, resume = Queue.pop live in
        incr steps;
        if !steps > fuel then
          raise
            (Out_of_fuel
               { steps = !steps; live = name :: List.map fst (List.of_seq (Queue.to_seq live)) });
        let track, fired, fire = track_of name in
        (match fire with Some s -> Pmu.add s ~cycle:t.net.round 1.0 | None -> ());
        let t0 = Telemetry.now_us t.tele in
        let outcome = resume () in
        if !fired < firing_span_budget then begin
          incr fired;
          Telemetry.span t.tele ~cat:"cosim" ~track ~name
            ~start_us:t0
            ~dur_us:(Telemetry.now_us t.tele -. t0)
            ()
        end
        else begin
          Telemetry.incr dropped_spans;
          if not !warned_drop then begin
            warned_drop := true;
            Log.warn Log.default
              ~fields:
                [
                  ("process", name); ("budget", string_of_int firing_span_budget);
                  ("counter", "kpn.spans_dropped");
                ]
              ~sub:"kpn" "firing-span budget exhausted; further spans counted, not recorded"
          end
        end;
        match outcome with
        | Finished -> finished := true
        | Yielded k -> Queue.push (name, fun () -> Effect.Deep.continue k ()) live
      done;
      t.net.round <- t.net.round + 1;
      (* Occupancy is sampled once per scheduler round — the KPN's
         modeled clock — so the PMU windows show queue depth over
         time, not just the high-water mark. *)
      if t.pmu <> None then
        List.iter
          (fun c ->
            match c.pmu_occ with
            | Some s -> Pmu.add s ~cycle:t.net.round (float_of_int (Queue.length c.buf))
            | None -> ())
          t.net.channels;
      if (not !finished) && t.net.progress = before && not (Queue.is_empty live) then
        raise (Deadlock (List.map fst (List.of_seq (Queue.to_seq live))));
      loop ()
    end
  in
  (* Channel high-water marks and the resume count are published even
     when the run dies (a deadlock trace with occupancy gauges is
     exactly when you want them). *)
  Fun.protect
    ~finally:(fun () ->
      Telemetry.incr ~by:!steps (Telemetry.counter t.tele "kpn.resumes");
      List.iter
        (fun c ->
          Telemetry.max_gauge
            (Telemetry.gauge t.tele ("kpn." ^ c.chan_name ^ ".peak"))
            (float_of_int c.peak))
        t.net.channels)
    loop

type channel_stats = {
  chan : string;
  tokens : int;
  peak_occupancy : int;
  block_events : int;
  blocked_reads : int;
  blocked_writes : int;
}

let stats t =
  List.rev_map
    (fun c ->
      {
        chan = c.chan_name;
        tokens = c.tokens;
        peak_occupancy = c.peak;
        block_events = c.read_blocks + c.write_blocks;
        blocked_reads = c.read_blocks;
        blocked_writes = c.write_blocks;
      })
    t.net.channels
