open Pld_ir
module Telemetry = Pld_telemetry.Telemetry

type _ Effect.t += Yield : unit Effect.t

type channel = {
  chan_name : string;
  elem : Dtype.t;
  capacity : int;
  buf : Value.t Queue.t;
  net : net;
  mutable tokens : int;
  mutable peak : int;
  mutable blocks : int;
}

and net = { mutable progress : int; mutable channels : channel list }

type t = { net : net; mutable procs : (string * (unit -> unit)) list; tele : Telemetry.t }

exception Deadlock of string list
exception Out_of_fuel of { steps : int; live : string list }

let create ?(telemetry = Telemetry.default) () =
  { net = { progress = 0; channels = [] }; procs = []; tele = telemetry }

let channel t ?(capacity = 16) ~name elem =
  if capacity < 1 then invalid_arg "Network.channel: capacity must be >= 1";
  let c =
    { chan_name = name; elem; capacity; buf = Queue.create (); net = t.net; tokens = 0; peak = 0; blocks = 0 }
  in
  t.net.channels <- c :: t.net.channels;
  c

let enqueue c v =
  Queue.push v c.buf;
  c.tokens <- c.tokens + 1;
  c.peak <- max c.peak (Queue.length c.buf);
  c.net.progress <- c.net.progress + 1

let read c =
  while Queue.is_empty c.buf do
    c.blocks <- c.blocks + 1;
    Effect.perform Yield
  done;
  let v = Queue.pop c.buf in
  c.net.progress <- c.net.progress + 1;
  v

let write c v =
  while Queue.length c.buf >= c.capacity do
    c.blocks <- c.blocks + 1;
    Effect.perform Yield
  done;
  enqueue c v

let yield () = Effect.perform Yield

let note_progress (t : t) = t.net.progress <- t.net.progress + 1

let try_read c =
  if Queue.is_empty c.buf then None
  else begin
    let v = Queue.pop c.buf in
    c.net.progress <- c.net.progress + 1;
    Some v
  end
let try_write c v =
  if Queue.length c.buf >= c.capacity then false
  else begin
    enqueue c v;
    true
  end

let push c v = enqueue c v

let drain c =
  let out = ref [] in
  while not (Queue.is_empty c.buf) do
    out := Queue.pop c.buf :: !out
  done;
  List.rev !out

let occupancy c = Queue.length c.buf
let channel_name c = c.chan_name
let elem_type c = c.elem

let add_process t ~name body = t.procs <- (name, body) :: t.procs

type outcome = Finished | Yielded of (unit, outcome) Effect.Deep.continuation

let start body () =
  Effect.Deep.match_with body ()
    {
      retc = (fun () -> Finished);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield -> Some (fun (k : (a, outcome) Effect.Deep.continuation) -> Yielded k)
          | _ -> None);
    }

(* Per-process cap on recorded firing spans: a long cosim fires each
   instance millions of times; the first firings carry the shape of the
   schedule, the rest would only blow up the trace. *)
let firing_span_budget = 256

let run ?(fuel = 50_000_000) t =
  let live = Queue.create () in
  List.iter (fun (name, body) -> Queue.push (name, start body) live) (List.rev t.procs);
  let steps = ref 0 in
  (* One cosim track per process instance; firing spans land on it. *)
  let tracks = Hashtbl.create 8 in
  let track_of name =
    match Hashtbl.find_opt tracks name with
    | Some tr -> tr
    | None ->
        let tr = (Telemetry.alloc_track t.tele ~cat:"cosim" name, ref 0) in
        Hashtbl.replace tracks name tr;
        tr
  in
  (* A "round" visits every live process once; if no token moved during
     a round and nothing finished, the network is deadlocked. *)
  let rec loop () =
    if Queue.is_empty live then ()
    else begin
      let round = Queue.length live in
      let before = t.net.progress in
      let finished = ref false in
      for _ = 1 to round do
        let name, resume = Queue.pop live in
        incr steps;
        if !steps > fuel then
          raise
            (Out_of_fuel
               { steps = !steps; live = name :: List.map fst (List.of_seq (Queue.to_seq live)) });
        let track, fired = track_of name in
        let t0 = Telemetry.now_us t.tele in
        let outcome = resume () in
        if !fired < firing_span_budget then begin
          incr fired;
          Telemetry.span t.tele ~cat:"cosim" ~track ~name
            ~start_us:t0
            ~dur_us:(Telemetry.now_us t.tele -. t0)
            ()
        end;
        match outcome with
        | Finished -> finished := true
        | Yielded k -> Queue.push (name, fun () -> Effect.Deep.continue k ()) live
      done;
      if (not !finished) && t.net.progress = before && not (Queue.is_empty live) then
        raise (Deadlock (List.map fst (List.of_seq (Queue.to_seq live))));
      loop ()
    end
  in
  (* Channel high-water marks and the resume count are published even
     when the run dies (a deadlock trace with occupancy gauges is
     exactly when you want them). *)
  Fun.protect
    ~finally:(fun () ->
      Telemetry.incr ~by:!steps (Telemetry.counter t.tele "kpn.resumes");
      List.iter
        (fun c ->
          Telemetry.max_gauge
            (Telemetry.gauge t.tele ("kpn." ^ c.chan_name ^ ".peak"))
            (float_of_int c.peak))
        t.net.channels)
    loop

type channel_stats = { chan : string; tokens : int; peak_occupancy : int; block_events : int }

let stats t =
  List.rev_map
    (fun c -> { chan = c.chan_name; tokens = c.tokens; peak_occupancy = c.peak; block_events = c.blocks })
    t.net.channels
