open Pld_ir

type _ Effect.t += Yield : unit Effect.t

type channel = {
  chan_name : string;
  elem : Dtype.t;
  capacity : int;
  buf : Value.t Queue.t;
  net : net;
  mutable tokens : int;
  mutable peak : int;
  mutable blocks : int;
}

and net = { mutable progress : int; mutable channels : channel list }

type t = { net : net; mutable procs : (string * (unit -> unit)) list }

exception Deadlock of string list
exception Out_of_fuel of { steps : int; live : string list }

let create () = { net = { progress = 0; channels = [] }; procs = [] }

let channel t ?(capacity = 16) ~name elem =
  if capacity < 1 then invalid_arg "Network.channel: capacity must be >= 1";
  let c =
    { chan_name = name; elem; capacity; buf = Queue.create (); net = t.net; tokens = 0; peak = 0; blocks = 0 }
  in
  t.net.channels <- c :: t.net.channels;
  c

let enqueue c v =
  Queue.push v c.buf;
  c.tokens <- c.tokens + 1;
  c.peak <- max c.peak (Queue.length c.buf);
  c.net.progress <- c.net.progress + 1

let read c =
  while Queue.is_empty c.buf do
    c.blocks <- c.blocks + 1;
    Effect.perform Yield
  done;
  let v = Queue.pop c.buf in
  c.net.progress <- c.net.progress + 1;
  v

let write c v =
  while Queue.length c.buf >= c.capacity do
    c.blocks <- c.blocks + 1;
    Effect.perform Yield
  done;
  enqueue c v

let yield () = Effect.perform Yield

let note_progress (t : t) = t.net.progress <- t.net.progress + 1

let try_read c =
  if Queue.is_empty c.buf then None
  else begin
    let v = Queue.pop c.buf in
    c.net.progress <- c.net.progress + 1;
    Some v
  end
let try_write c v =
  if Queue.length c.buf >= c.capacity then false
  else begin
    enqueue c v;
    true
  end

let push c v = enqueue c v

let drain c =
  let out = ref [] in
  while not (Queue.is_empty c.buf) do
    out := Queue.pop c.buf :: !out
  done;
  List.rev !out

let occupancy c = Queue.length c.buf
let channel_name c = c.chan_name
let elem_type c = c.elem

let add_process t ~name body = t.procs <- (name, body) :: t.procs

type outcome = Finished | Yielded of (unit, outcome) Effect.Deep.continuation

let start body () =
  Effect.Deep.match_with body ()
    {
      retc = (fun () -> Finished);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield -> Some (fun (k : (a, outcome) Effect.Deep.continuation) -> Yielded k)
          | _ -> None);
    }

let run ?(fuel = 50_000_000) t =
  let live = Queue.create () in
  List.iter (fun (name, body) -> Queue.push (name, start body) live) (List.rev t.procs);
  let steps = ref 0 in
  (* A "round" visits every live process once; if no token moved during
     a round and nothing finished, the network is deadlocked. *)
  let rec loop () =
    if Queue.is_empty live then ()
    else begin
      let round = Queue.length live in
      let before = t.net.progress in
      let finished = ref false in
      for _ = 1 to round do
        let name, resume = Queue.pop live in
        incr steps;
        if !steps > fuel then
          raise
            (Out_of_fuel
               { steps = !steps; live = name :: List.map fst (List.of_seq (Queue.to_seq live)) });
        match resume () with
        | Finished -> finished := true
        | Yielded k -> Queue.push (name, fun () -> Effect.Deep.continue k ()) live
      done;
      if (not !finished) && t.net.progress = before && not (Queue.is_empty live) then
        raise (Deadlock (List.map fst (List.of_seq (Queue.to_seq live))));
      loop ()
    end
  in
  loop ()

type channel_stats = { chan : string; tokens : int; peak_occupancy : int; block_events : int }

let stats t =
  List.rev_map
    (fun c -> { chan = c.chan_name; tokens = c.tokens; peak_occupancy = c.peak; block_events = c.blocks })
    t.net.channels
