(** Kahn-process-network runtime: latency-insensitive stream links
    (§3.2) between cooperatively scheduled processes.

    Reads from an empty stream block; writes to a full stream block
    (back-pressure). Blocking is implemented with OCaml effects, so a
    process is ordinary straight-line code. The scheduler detects
    deadlock (no token moved in a full round) and fuel exhaustion. *)

open Pld_ir

type t
type channel

exception Deadlock of string list
(** Names of the processes still blocked. *)

exception Out_of_fuel of { steps : int; live : string list }
(** Scheduler resume budget exhausted while [live] processes were
    still running — usually a hung or livelocked operator. *)

val create : ?telemetry:Pld_telemetry.Telemetry.t -> ?pmu:Pld_telemetry.Pmu.t -> unit -> t
(** [telemetry] (default the process sink) receives one cosim track per
    process with its first firings as wall-clock spans, [kpn.resumes]
    and [kpn.spans_dropped] counters, and a [kpn.<channel>.peak]
    high-water gauge per channel (published even when {!run} raises).

    [pmu] (default none) additionally receives windowed series on the
    scheduler-round clock: [kpn.proc.<name>.firings] per process, and
    [kpn.chan.<name>.stall_read] / [.stall_write] / [.occupancy] per
    channel — the raw material of back-pressure attribution. *)

val channel : t -> ?capacity:int -> name:string -> Dtype.t -> channel
(** [capacity] defaults to 16; [max_int] means effectively unbounded. *)

val read : channel -> Value.t
(** Blocks (yields) until a token is available. Must be called from
    within a process body. *)

val write : channel -> Value.t -> unit
(** Blocks while the channel is full. *)

val yield : unit -> unit
(** Cooperatively give up the processor from within a process body —
    used by process bodies that poll (e.g. softcore co-simulation)
    instead of calling the blocking {!read}/{!write}. *)

val note_progress : t -> unit
(** Tell the deadlock detector that a process made internal progress
    (e.g. a softcore retired instructions) even though no token moved
    this round. *)

val try_read : channel -> Value.t option
(** Non-blocking; usable outside the network too. *)

val try_write : channel -> Value.t -> bool
(** Non-blocking enqueue respecting capacity; false when full. *)

val push : channel -> Value.t -> unit
(** Non-blocking enqueue that ignores capacity — host-side preloading
    of input channels. *)

val drain : channel -> Value.t list
(** Remove and return all buffered tokens (host-side). *)

val occupancy : channel -> int
val channel_name : channel -> string
val elem_type : channel -> Dtype.t

val add_process : t -> name:string -> (unit -> unit) -> unit

val run : ?fuel:int -> t -> unit
(** Runs until every process finishes. [fuel] bounds scheduler resume
    steps (default 50 million). Raises {!Deadlock} or {!Out_of_fuel}. *)

type channel_stats = {
  chan : string;
  tokens : int;  (** total tokens ever enqueued *)
  peak_occupancy : int;
  block_events : int;  (** reader/writer blockings observed (sum of the two below) *)
  blocked_reads : int;  (** consumer stalled on an empty channel *)
  blocked_writes : int;  (** producer stalled on a full channel (back-pressure) *)
}

val stats : t -> channel_stats list
