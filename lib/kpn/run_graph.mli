(** Functional execution of a whole application graph on the KPN
    runtime: the behavioural reference every compiled flow (-O0/-O1/
    -O3) must match, and the source of the token/work profiles the
    performance models consume. *)

open Pld_ir

type result = {
  outputs : (string * Value.t list) list;  (** per graph-output channel *)
  channel_stats : Network.channel_stats list;
  op_counters : (string * Interp.counters) list;  (** per instance *)
  printed : (string * string) list;  (** (instance, text) from -O0 printf *)
}

val run :
  ?fuel:int ->
  ?rounds:int ->
  ?processor:bool ->
  ?order:string list ->
  ?pmu:Pld_telemetry.Pmu.t ->
  ?rates:(string * int) list ->
  Graph.t ->
  inputs:(string * Value.t list) list ->
  result
(** [run g ~inputs] validates [g], preloads each input channel, runs
    every operator body [rounds] times (default 1 — one frame), and
    drains the outputs. [processor] enables [Printf] statements.
    [order] registers processes (and hence schedules the round-robin)
    in the given instance order — by the Kahn property the outputs must
    not depend on it, which the property-based oracle checks. [pmu]
    receives windowed firing/stall/occupancy series (see
    {!Network.create}); a profiled run additionally streams inputs
    through bounded host-DMA processes (instead of preloading) so
    back-pressure against the host is observable. [rates] gives
    instances their modeled cycles-per-firing: relative to the fastest
    rated instance, slower ones yield proportionally more scheduler
    rounds per token, making the stall counters reflect the modeled
    service rates (outputs unchanged, by the same Kahn property).
    Raises {!Validate.Invalid}, {!Network.Deadlock} or
    {!Network.Out_of_fuel}. *)

val run_words :
  ?fuel:int -> ?rounds:int -> Graph.t -> inputs:(string * int list) list -> (string * int list) list
(** Convenience wrapper: 32-bit integer tokens in and out. *)
