(** Top-level application graphs: operators composed by stream links,
    the [top.cpp] of Fig. 2, plus the per-operator mapping pragmas of
    Fig. 2(a). *)

type target =
  | Hw of { page_hint : int option }  (** [#pragma target=HW p_num=k] *)
  | Riscv  (** [#pragma target=RISCV] *)

type channel = { chan_name : string; elem : Dtype.t; depth : int }

type instance = {
  inst_name : string;
  op : Op.t;
  target : target;
  bindings : (string * string) list;  (** operator port name → channel name *)
}

type t = {
  graph_name : string;
  channels : channel list;
  instances : instance list;
  inputs : string list;  (** channel names fed by the host DMA *)
  outputs : string list;  (** channel names drained by the host DMA *)
}

val channel : ?depth:int -> ?elem:Dtype.t -> string -> channel
(** Depth defaults to 16 (the paper's hardware FIFO depth); element
    type defaults to the 32-bit word. *)

val instance : ?target:target -> ?name:string -> Op.t -> (string * string) list -> instance
(** [instance op bindings] names the instance after the operator unless
    [name] is given; target defaults to [Hw] with no page hint. *)

val make :
  name:string ->
  channels:channel list ->
  instances:instance list ->
  inputs:string list ->
  outputs:string list ->
  t

val find_channel : t -> string -> channel option
val find_instance : t -> string -> instance option

val producer : t -> string -> string option
(** [producer g chan] is the instance name writing [chan], or [None]
    for a graph input. *)

val consumer : t -> string -> string option

val rebind : t -> inst:string -> port:string -> string -> t
(** [rebind g ~inst ~port chan] repoints one instance's port binding at
    [chan], leaving every other binding alone. The result is not
    revalidated — the mutation harness uses this to model post-link
    miswiring, so the caller decides whether the outcome must still
    pass {!Validate}. *)

val binding : t -> inst:string -> port:string -> string option
(** The channel [inst]'s [port] is bound to, if both exist. *)

val retarget : t -> string -> target -> t
(** Change one instance's mapping pragma — the single-line edit that
    switches an operator between -O0 and -O1 in the paper's flow. *)

val retarget_all : t -> target -> t

val touch_op : t -> string -> t option
(** [touch_op g inst] appends a behavior-neutral debug printf to
    [inst]'s operator body — the canonical "one-operator edit" of the
    incremental-compile loop: the operator's source (and thus every
    cache key derived from it) changes while the streamed outputs do
    not. [None] when [inst] is not in the graph. *)

val edges : t -> (string * string * string) list
(** [(producer_instance, consumer_instance, channel)] internal edges. *)

val topo_order : t -> instance list
(** Instances in topological order of the dataflow (feed-forward part);
    raises [Pld_util.Topo.Cycle] on cyclic graphs. *)

val source : t -> string
(** C-like rendering of the top-level function (Fig. 2(b)). *)

val pp : Format.formatter -> t -> unit
