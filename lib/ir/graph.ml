type target = Hw of { page_hint : int option } | Riscv

type channel = { chan_name : string; elem : Dtype.t; depth : int }

type instance = {
  inst_name : string;
  op : Op.t;
  target : target;
  bindings : (string * string) list;
}

type t = {
  graph_name : string;
  channels : channel list;
  instances : instance list;
  inputs : string list;
  outputs : string list;
}

let channel ?(depth = 16) ?(elem = Dtype.word) chan_name = { chan_name; elem; depth }

let instance ?(target = Hw { page_hint = None }) ?name op bindings =
  { inst_name = (match name with Some n -> n | None -> op.Op.name); op; target; bindings }

let make ~name ~channels ~instances ~inputs ~outputs =
  { graph_name = name; channels; instances; inputs; outputs }

let find_channel t name = List.find_opt (fun c -> c.chan_name = name) t.channels
let find_instance t name = List.find_opt (fun i -> i.inst_name = name) t.instances

let binds_port_to inst chan port_names =
  List.exists
    (fun (port, ch) -> ch = chan && List.exists (fun p -> p.Op.port_name = port) port_names)
    inst.bindings

let producer t chan =
  List.find_opt (fun i -> binds_port_to i chan i.op.Op.outputs) t.instances
  |> Option.map (fun i -> i.inst_name)

let consumer t chan =
  List.find_opt (fun i -> binds_port_to i chan i.op.Op.inputs) t.instances
  |> Option.map (fun i -> i.inst_name)

let rebind t ~inst ~port chan =
  {
    t with
    instances =
      List.map
        (fun i ->
          if i.inst_name = inst then
            { i with bindings = List.map (fun (p, c) -> if p = port then (p, chan) else (p, c)) i.bindings }
          else i)
        t.instances;
  }

let binding t ~inst ~port =
  Option.bind (find_instance t inst) (fun i -> List.assoc_opt port i.bindings)

let retarget t inst_name target =
  {
    t with
    instances =
      List.map (fun i -> if i.inst_name = inst_name then { i with target } else i) t.instances;
  }

let retarget_all t target = { t with instances = List.map (fun i -> { i with target }) t.instances }

let edges t =
  List.filter_map
    (fun c ->
      match (producer t c.chan_name, consumer t c.chan_name) with
      | Some p, Some q -> Some (p, q, c.chan_name)
      | _ -> None)
    t.channels

let topo_order t =
  let names = List.map (fun i -> i.inst_name) t.instances in
  let index name =
    let rec go i = function
      | [] -> invalid_arg "Graph.topo_order: unknown instance"
      | n :: rest -> if n = name then i else go (i + 1) rest
    in
    go 0 names
  in
  let e = List.map (fun (p, q, _) -> (index p, index q)) (edges t) in
  let order = Pld_util.Topo.sort ~n:(List.length names) ~edges:e in
  List.map (fun i -> List.nth t.instances i) order

let touch_op t inst =
  match find_instance t inst with
  | None -> None
  | Some _ ->
      Some
        {
          t with
          instances =
            List.map
              (fun (i : instance) ->
                if i.inst_name = inst then
                  {
                    i with
                    op =
                      {
                        i.op with
                        Op.body = i.op.Op.body @ [ Op.Printf ("touched " ^ inst, []) ];
                      };
                  }
                else i)
              t.instances;
        }

let source t =
  let buf = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "void %s(%s) {\n" t.graph_name
    (String.concat ", " (List.map (fun c -> Printf.sprintf "hls::stream<%s>& %s" (Dtype.to_string Dtype.word) c) (t.inputs @ t.outputs)));
  List.iter
    (fun c ->
      if not (List.mem c.chan_name t.inputs || List.mem c.chan_name t.outputs) then
        addf "  hls::stream<%s> %s; // depth=%d\n" (Dtype.to_string c.elem) c.chan_name c.depth)
    t.channels;
  List.iter
    (fun i ->
      let args = List.map snd i.bindings in
      let pragma =
        match i.target with
        | Hw { page_hint = Some p } -> Printf.sprintf " // #pragma target=HW p_num=%d" p
        | Hw { page_hint = None } -> " // #pragma target=HW"
        | Riscv -> " // #pragma target=RISCV"
      in
      addf "  %s(%s);%s\n" i.op.Op.name (String.concat ", " args) pragma)
    t.instances;
  addf "}";
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (source t)
