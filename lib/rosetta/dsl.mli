(** Construction helpers shared by the Rosetta benchmark graphs. *)

open Pld_ir

val u32 : Dtype.t
val i32 : Dtype.t
val fx32 : Dtype.t
(** ap_fixed<32,17>, the optical-flow working type. *)

val fx64 : Dtype.t
(** ap_fixed<64,40>, the wide intermediate type. *)

val c : Dtype.t -> int -> Expr.t
(** Integer constant. *)

val cf : Dtype.t -> float -> Expr.t
val v : string -> Expr.t
val idx : string -> Expr.t -> Expr.t
val ( .%[] ) : string -> Expr.t -> Expr.t

val assign : string -> Expr.t -> Op.stmt
val set : string -> Expr.t -> Expr.t -> Op.stmt
(** [set a i e] is [a[i] = e]. *)

val read : string -> string -> Op.stmt
(** [read x port] *)

val read_at : string -> Expr.t -> string -> Op.stmt
val write : string -> Expr.t -> Op.stmt
(** [write port e] *)

val for_ : ?pipeline:bool -> string -> int -> int -> Op.stmt list -> Op.stmt
val if_ : Expr.t -> Op.stmt list -> Op.stmt list -> Op.stmt

val pipe_op :
  name:string ->
  ins:string list ->
  outs:string list ->
  ?locals:Op.decl list ->
  Op.stmt list ->
  Op.t
(** Operator with 32-bit word ports. *)

(** {2 Single-rate operator templates}

    The shapes the random dataflow-graph generator ([lib/proptest])
    composes: each consumes [n] tokens per firing on every input port
    and produces [n] on every output port. [dt] is the internal compute
    type (default the 32-bit word); stream payloads stay 32-bit words
    via bitcasts on read/write. *)

val map_op : name:string -> n:int -> ?dt:Dtype.t -> (Expr.t -> Expr.t) -> Op.t
(** Ports "in" → "out": one token out per token in. *)

val dup_op :
  name:string -> n:int -> ?dt:Dtype.t -> (Expr.t -> Expr.t) -> (Expr.t -> Expr.t) -> Op.t
(** Fan-out. Ports "in" → "out0"/"out1": each input token is written
    (through [f] and [g]) to both outputs. *)

val zip_op : name:string -> n:int -> ?dt:Dtype.t -> (Expr.t -> Expr.t -> Expr.t) -> Op.t
(** Join. Ports "in0"/"in1" → "out": pairwise combination. *)

val chain :
  name:string ->
  input:string ->
  output:string ->
  (Op.t * Graph.target) list ->
  Graph.t
(** Linear pipeline: each operator has ports "in"/"out"; channels are
    generated between consecutive stages. *)

val reduce_tree : Expr.t list -> Expr.t
(** Balanced addition tree — keeps inferred widths logarithmic, the
    way HLS builds reduction adders. *)

val words_of_values : Value.t list -> int list
val word_values : int list -> Value.t list
val fx_word : float -> Value.t
(** ap_fixed<32,17> encoded into a 32-bit stream word. *)

val fx_of_word : Value.t -> float
