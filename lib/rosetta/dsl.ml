open Pld_ir

let u32 = Dtype.word
let i32 = Dtype.SInt 32
let fx32 = Dtype.SFixed { width = 32; int_bits = 17 }
let fx64 = Dtype.SFixed { width = 64; int_bits = 40 }

let c dt n = Expr.int dt n
let cf dt x = Expr.float_ dt x
let v = Expr.var
let idx a i = Expr.Idx (a, i)
let ( .%[] ) a i = Expr.Idx (a, i)

let assign name e = Op.Assign (Op.LVar name, e)
let set a i e = Op.Assign (Op.LIdx (a, i), e)
let read x port = Op.Read (Op.LVar x, port)
let read_at a i port = Op.Read (Op.LIdx (a, i), port)
let write port e = Op.Write (port, e)

let for_ ?(pipeline = true) var lo hi body = Op.For { var; lo; hi; body; pipeline }
let if_ cond a b = Op.If (cond, a, b)

let pipe_op ~name ~ins ~outs ?(locals = []) body =
  Op.make ~name ~inputs:(List.map Op.word_port ins) ~outputs:(List.map Op.word_port outs) ~locals
    body

(* Single-rate operator templates: the shapes the random dataflow-graph
   generator (lib/proptest) composes. Each consumes [n] tokens per
   firing on every input and produces [n] on every output; [dt] is the
   internal compute type (reads bitcast in, writes bitcast back to the
   32-bit stream word). *)

let map_op ~name ~n ?(dt = u32) f =
  Op.make ~name ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
    ~locals:[ Op.scalar "x" dt ]
    [ for_ "i" 0 n [ read "x" "in"; write "out" (f (v "x")) ] ]

let dup_op ~name ~n ?(dt = u32) f g =
  Op.make ~name ~inputs:[ Op.word_port "in" ]
    ~outputs:[ Op.word_port "out0"; Op.word_port "out1" ]
    ~locals:[ Op.scalar "x" dt ]
    [ for_ "i" 0 n [ read "x" "in"; write "out0" (f (v "x")); write "out1" (g (v "x")) ] ]

let zip_op ~name ~n ?(dt = u32) f =
  Op.make ~name ~inputs:[ Op.word_port "in0"; Op.word_port "in1" ]
    ~outputs:[ Op.word_port "out" ]
    ~locals:[ Op.scalar "a" dt; Op.scalar "b" dt ]
    [ for_ "i" 0 n [ read "a" "in0"; read "b" "in1"; write "out" (f (v "a") (v "b")) ] ]

let chain ~name ~input ~output stages =
  let n = List.length stages in
  if n = 0 then invalid_arg "Dsl.chain: empty pipeline";
  let chan_name i = if i = 0 then input else if i = n then output else Printf.sprintf "c%d" i in
  let channels = List.init (n + 1) (fun i -> Graph.channel (chan_name i)) in
  let instances =
    List.mapi
      (fun i (op, target) ->
        Graph.instance ~target ~name:op.Op.name op
          [ ("in", chan_name i); ("out", chan_name (i + 1)) ])
      stages
  in
  Graph.make ~name ~channels ~instances ~inputs:[ input ] ~outputs:[ output ]

let rec reduce_tree = function
  | [] -> invalid_arg "Dsl.reduce_tree: empty"
  | [ e ] -> e
  | es ->
      let rec pairs = function
        | a :: b :: rest -> Expr.Bin (Expr.Add, a, b) :: pairs rest
        | [ a ] -> [ a ]
        | [] -> []
      in
      reduce_tree (pairs es)

let words_of_values vs = List.map (fun v -> Value.to_int (Value.bitcast u32 v)) vs
let word_values ws = List.map (fun w -> Value.of_int u32 w) ws
let fx_word x = Value.bitcast u32 (Value.of_float fx32 x)
let fx_of_word w = Value.to_float (Value.bitcast fx32 w)
