(** Unified cross-layer telemetry: spans, a metrics registry and
    Perfetto/JSON exporters.

    One process-wide, domain-safe sink ({!default}) collects what used
    to be fragmented over [Engine.Event] lines, [Bft.stats],
    [Interp.counters] and the recovery report:

    - {b spans} — named intervals with a category (the layer: engine,
      flow, noc, cosim, loader, platform, build), a track (Perfetto
      tid; by default the current domain), key/value attributes, and
      one of two clock domains;
    - {b instants} — zero-duration marks (cache hits, retries,
      recovery steps);
    - {b metrics} — counters, gauges and histograms in an
      insertion-ordered registry.

    {b Clock domains.} [Wall] spans carry measured microseconds since
    the sink's epoch — what the executor, loader and cosim scheduler
    actually spent. [Modeled] spans carry simulated backend-tool or
    overlay seconds (HLS/syn/p&r/bitgen phase breakdowns, NoC replay
    cycles) laid out sequentially on their own tracks; the two domains
    are never mixed on one timeline. The Chrome trace export maps each
    (category, clock) pair to a Perfetto process and each track to a
    thread, so a trace opens as one lane group per layer.

    All operations are safe to call from multiple domains (a single
    mutex per sink). Span storage is capped; past the cap spans are
    counted as dropped rather than recorded. {!reset} invalidates
    previously obtained metric handles — re-fetch them after a reset. *)

type clock = Wall | Modeled

type span = {
  name : string;
  cat : string;  (** layer: "engine", "noc", "cosim", "loader", ... *)
  track : int;  (** Perfetto tid within the (cat, clock) process *)
  clock : clock;
  start_us : float;  (** wall: us since the sink epoch; modeled: us on the track's own timeline *)
  dur_us : float option;  (** [None] marks an instant event *)
  attrs : (string * string) list;
}

type t

val create : unit -> t
val default : t
(** The process-wide sink every layer records into unless handed an
    explicit one. *)

val reset : t -> unit
(** Drop all spans, metrics and track names and restart the epoch.
    Metric handles from before the reset go stale (their increments
    are no longer visible to the sink). *)

val now_us : t -> float
(** Wall-clock microseconds since the sink's epoch. *)

(** {2 Spans} *)

val span :
  t ->
  ?cat:string ->
  ?track:int ->
  ?clock:clock ->
  ?attrs:(string * string) list ->
  name:string ->
  start_us:float ->
  dur_us:float ->
  unit ->
  unit
(** Record a completed span. [cat] defaults to ["misc"]; [track] to the
    calling domain's id; [clock] to [Wall]. *)

val instant : t -> ?cat:string -> ?track:int -> ?attrs:(string * string) list -> string -> unit
(** Record a zero-duration mark at [now_us]. *)

val with_span :
  t -> ?cat:string -> ?track:int -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a wall-clock span. {b Exception-safe}: if the
    thunk raises, the span is still closed (with an ["error"]
    attribute holding the exception text) before the exception
    propagates. Spans nest by time containment on a track, so nested
    [with_span] calls on one domain render as a flame graph. *)

val alloc_track : t -> ?clock:clock -> cat:string -> string -> int
(** A fresh track id (unique within the sink across all categories),
    registered under the given display name — exported as a Perfetto
    [thread_name]. *)

val set_track_name : t -> ?clock:clock -> cat:string -> track:int -> string -> unit
(** Name an existing track (e.g. executor worker indices). *)

(** {2 Modeled-clock tracks}

    A modeled track is a private timeline in simulated seconds: each
    {!modeled_span} is placed at the track's cursor and advances it,
    so consecutive calls tile left to right. *)

type modeled_track

val modeled_track : t -> cat:string -> name:string -> modeled_track
val modeled_span : t -> modeled_track -> ?attrs:(string * string) list -> string -> float -> unit
(** [modeled_span t mt name seconds] — duration is in modeled seconds. *)

val spans : t -> span list
(** All recorded spans and instants in recording order (a span records
    when it {e closes}; sort by [start_us] for a timeline view). *)

val dropped_spans : t -> int
(** Spans discarded after the storage cap was reached. *)

(** {2 Metrics registry} *)

type counter
type gauge
type histogram

val counter : t -> string -> counter
(** Fetch-or-create. Always re-fetch after {!reset}. *)

val incr : ?by:int -> counter -> unit
val counter_value : t -> string -> int
(** 0 for an unknown name. *)

val gauge : t -> string -> gauge
val set_gauge : gauge -> float -> unit
val max_gauge : gauge -> float -> unit
(** High-water-mark update: keeps the larger of the current and given
    values (first call just sets). *)

val gauge_value : t -> string -> float option

val default_buckets : float list
(** Exponential upper edges 1e-6 .. 1e4, for duration-like samples in
    seconds. *)

val histogram : t -> ?buckets:float list -> string -> histogram
(** Fetch-or-create with the given upper bucket edges (strictly
    ascending; an implicit +inf bucket is appended). [buckets] is
    ignored when the histogram already exists. *)

val observe : histogram -> float -> unit

val bucket_counts : t -> string -> (float * int) list
(** [(upper_edge, count)] per bucket, the +inf bucket as
    [Float.infinity]. Empty for an unknown name. *)

val samples : t -> string -> float list
(** Raw observations in insertion order (capped; used by the adaptive
    renderers). *)

val metric_names : t -> string list

(** {2 Export} *)

val to_chrome_json : t -> Json.t
(** Chrome trace-event JSON ([{"traceEvents": [...]}]) that loads in
    Perfetto: ["X"] events for spans, ["i"] for instants, ["M"]
    metadata naming each (category, clock) process and each track. *)

val to_metrics_json : t -> Json.t
(** Flat metrics document: counters, gauges, histograms (bucket
    counts, sum/count/min/max) and span bookkeeping. *)

val write_chrome : t -> file:string -> unit
val write_metrics : t -> file:string -> unit

val to_prometheus : t -> string
(** Prometheus text exposition (version 0.0.4) of the metrics
    registry: every name is sanitized and prefixed [pld_]; every
    metric — counter, gauge (set or not) and histogram — gets a
    [# HELP] line (carrying the original dotted registry name, escaped)
    and a [# TYPE] line; counters and set gauges one sample each,
    histograms as cumulative [_bucket{le="..."}] series plus
    [_sum]/[_count]; span bookkeeping as
    [pld_spans_recorded]/[pld_spans_dropped]. Scraped live from the
    daemon via the [Metrics] admin verb. *)

val prometheus_escape_label : string -> string
(** Escape a label value for the exposition format: backslash,
    double-quote and newline get a backslash escape. *)

(** {2 Human rendering} *)

val render_section : string -> string
(** The bench harness's ["\n===== title =====\n"] banner. *)

val render_metrics : t -> string list
(** One aligned line per registered metric, histograms with an
    inline distribution summary. *)

val render_metric : t -> string -> string option
(** The {!render_metrics} line for a single registered metric, or
    [None] for an unknown name — lets a harness print one metric
    inline without dumping the whole registry. *)

val render_summary : t -> string -> string
(** min/median/mean/max of a histogram's samples — the registry's
    replacement for [Stats.summary] dumps. *)

val render_histogram : ?bins:int -> t -> string -> string list
(** Adaptive-bin bar rendering of a histogram's raw samples (the
    registry's replacement for ad-hoc [Stats.histogram] printing). *)
