(* Windowed time-series sampler over a modeled clock. Each series owns
   a ring of [depth] window accumulators; slot [wi mod depth] holds
   window [wi] (cycles [wi*width .. wi*width+width-1]). Advancing past
   a slot whose resident window is older simply resets it in place —
   no copying, O(1) per sample, O(depth) memory per series. *)

type win = {
  mutable wn_index : int;  (* -1 = slot empty *)
  mutable wn_sum : float;
  mutable wn_count : int;
  mutable wn_peak : float;
}

type series = {
  s_name : string;
  s_unit : string;
  s_width : int;
  s_ring : win array;
  mutable s_total : float;
  mutable s_count : int;
  mutable s_dropped : int;
  mutable s_last_cycle : int;
  mutable s_head : int;  (* highest window index seen; -1 until first sample *)
  mutable s_peak : float;
}

type t = {
  p_width : int;
  p_depth : int;
  p_tbl : (string, series) Hashtbl.t;
  mutable p_order : string list;  (* reversed insertion order *)
}

let create ?(window_cycles = 1024) ?(depth = 64) () =
  if window_cycles <= 0 then invalid_arg "Pmu.create: window_cycles must be positive";
  if depth <= 0 then invalid_arg "Pmu.create: depth must be positive";
  { p_width = window_cycles; p_depth = depth; p_tbl = Hashtbl.create 32; p_order = [] }

let window_cycles t = t.p_width
let depth t = t.p_depth

let fresh_win () = { wn_index = -1; wn_sum = 0.0; wn_count = 0; wn_peak = 0.0 }

let series t ?(unit_ = "events") name =
  match Hashtbl.find_opt t.p_tbl name with
  | Some s -> s
  | None ->
      let s =
        {
          s_name = name;
          s_unit = unit_;
          s_width = t.p_width;
          s_ring = Array.init t.p_depth (fun _ -> fresh_win ());
          s_total = 0.0;
          s_count = 0;
          s_dropped = 0;
          s_last_cycle = 0;
          s_head = -1;
          s_peak = 0.0;
        }
      in
      Hashtbl.add t.p_tbl name s;
      t.p_order <- name :: t.p_order;
      s

let add s ~cycle v =
  let cycle = if cycle < 0 then 0 else cycle in
  let wi = cycle / s.s_width in
  let d = Array.length s.s_ring in
  if s.s_head >= 0 && wi <= s.s_head - d then s.s_dropped <- s.s_dropped + 1
  else begin
    s.s_total <- s.s_total +. v;
    s.s_count <- s.s_count + 1;
    if cycle > s.s_last_cycle then s.s_last_cycle <- cycle;
    if v > s.s_peak then s.s_peak <- v;
    if wi > s.s_head then s.s_head <- wi;
    let w = s.s_ring.(wi mod d) in
    if w.wn_index <> wi then begin
      w.wn_index <- wi;
      w.wn_sum <- 0.0;
      w.wn_count <- 0;
      w.wn_peak <- 0.0
    end;
    w.wn_sum <- w.wn_sum +. v;
    w.wn_count <- w.wn_count + 1;
    if v > w.wn_peak then w.wn_peak <- v
  end

let series_names t = List.rev t.p_order

type stat = {
  st_name : string;
  st_unit : string;
  st_total : float;
  st_count : int;
  st_dropped : int;
  st_last_cycle : int;
  st_rate : float;
  st_window_rate : float;
  st_peak_window : float;
  st_mean : float;
  st_peak : float;
}

type window = { w_index : int; w_sum : float; w_count : int; w_peak : float }

(* Slots whose resident window is still inside [head-depth+1 .. head],
   oldest first. Empty slots (index -1) and evicted residues never
   qualify because head - depth + 1 >= 0 is implied by wi >= 0. *)
let live_windows s =
  if s.s_head < 0 then []
  else begin
    let floor = s.s_head - Array.length s.s_ring + 1 in
    Array.to_list s.s_ring
    |> List.filter_map (fun w ->
           if w.wn_index >= floor && w.wn_index >= 0 then
             Some { w_index = w.wn_index; w_sum = w.wn_sum; w_count = w.wn_count; w_peak = w.wn_peak }
           else None)
    |> List.sort (fun a b -> compare a.w_index b.w_index)
  end

let stat_of s =
  let wins = live_windows s in
  let wsum = List.fold_left (fun acc w -> acc +. w.w_sum) 0.0 wins in
  let span_cycles = float_of_int (List.length wins * s.s_width) in
  {
    st_name = s.s_name;
    st_unit = s.s_unit;
    st_total = s.s_total;
    st_count = s.s_count;
    st_dropped = s.s_dropped;
    st_last_cycle = s.s_last_cycle;
    st_rate = (if s.s_count = 0 then 0.0 else s.s_total /. float_of_int (s.s_last_cycle + 1));
    st_window_rate = (if span_cycles = 0.0 then 0.0 else wsum /. span_cycles);
    st_peak_window = List.fold_left (fun acc w -> Float.max acc w.w_sum) 0.0 wins;
    st_mean = (if s.s_count = 0 then 0.0 else s.s_total /. float_of_int s.s_count);
    st_peak = s.s_peak;
  }

let stat t name = Option.map stat_of (Hashtbl.find_opt t.p_tbl name)
let stats t = List.map (fun n -> stat_of (Hashtbl.find t.p_tbl n)) (series_names t)

let windows t name =
  match Hashtbl.find_opt t.p_tbl name with None -> [] | Some s -> live_windows s

(* Persistence. Window indices are explicit in the document, so the
   ring reconstructs exactly — including gaps from idle windows. *)

let to_json t =
  let series_json s =
    Json.Obj
      [
        ("name", Json.String s.s_name);
        ("unit", Json.String s.s_unit);
        ("total", Json.Float s.s_total);
        ("count", Json.Int s.s_count);
        ("dropped", Json.Int s.s_dropped);
        ("last_cycle", Json.Int s.s_last_cycle);
        ("peak", Json.Float s.s_peak);
        ("head", Json.Int s.s_head);
        ( "windows",
          Json.List
            (List.map
               (fun w ->
                 Json.Obj
                   [
                     ("i", Json.Int w.w_index);
                     ("sum", Json.Float w.w_sum);
                     ("count", Json.Int w.w_count);
                     ("peak", Json.Float w.w_peak);
                   ])
               (live_windows s)) );
      ]
  in
  Json.Obj
    [
      ("window_cycles", Json.Int t.p_width);
      ("depth", Json.Int t.p_depth);
      ( "series",
        Json.List (List.map (fun n -> series_json (Hashtbl.find t.p_tbl n)) (series_names t)) );
    ]

let num_field obj name =
  match Json.member name obj with
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int i) -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "pmu: missing numeric field %S" name)

let int_field obj name =
  match Json.member name obj with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "pmu: missing integer field %S" name)

let str_field obj name =
  match Json.member name obj with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "pmu: missing string field %S" name)

let ( let* ) = Result.bind

let window_of_json j =
  let* i = int_field j "i" in
  let* sum = num_field j "sum" in
  let* count = int_field j "count" in
  let* peak = num_field j "peak" in
  Ok { w_index = i; w_sum = sum; w_count = count; w_peak = peak }

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let series_of_json t j =
  let* name = str_field j "name" in
  let* unit_ = str_field j "unit" in
  let* total = num_field j "total" in
  let* count = int_field j "count" in
  let* dropped = int_field j "dropped" in
  let* last_cycle = int_field j "last_cycle" in
  let* peak = num_field j "peak" in
  let* head = int_field j "head" in
  let* wins =
    match Json.member "windows" j with
    | Some (Json.List ws) -> map_result window_of_json ws
    | _ -> Error "pmu: missing windows list"
  in
  let s = series t ~unit_ name in
  s.s_total <- total;
  s.s_count <- count;
  s.s_dropped <- dropped;
  s.s_last_cycle <- last_cycle;
  s.s_peak <- peak;
  s.s_head <- head;
  List.iter
    (fun w ->
      let slot = s.s_ring.(w.w_index mod Array.length s.s_ring) in
      slot.wn_index <- w.w_index;
      slot.wn_sum <- w.w_sum;
      slot.wn_count <- w.w_count;
      slot.wn_peak <- w.w_peak)
    wins;
  Ok ()

let of_json j =
  let* width = int_field j "window_cycles" in
  let* d = int_field j "depth" in
  if width <= 0 || d <= 0 then Error "pmu: invalid window_cycles/depth"
  else
    let t = create ~window_cycles:width ~depth:d () in
    let* () =
      match Json.member "series" j with
      | Some (Json.List ss) ->
          let* _ = map_result (series_of_json t) ss in
          Ok ()
      | _ -> Error "pmu: missing series list"
    in
    Ok t

let render t =
  let rows =
    List.map
      (fun st ->
        ( st.st_name,
          Printf.sprintf "%10.4f/cyc" st.st_rate,
          Printf.sprintf "peak %10.1f" st.st_peak_window,
          Printf.sprintf "mean %8.2f %s" st.st_mean st.st_unit ))
      (stats t)
  in
  let name_w = List.fold_left (fun acc (n, _, _, _) -> max acc (String.length n)) 0 rows in
  List.map
    (fun (n, rate, peak, mean) -> Printf.sprintf "%-*s %s  %s  %s" name_w n rate peak mean)
    rows
