(** Fabric performance-monitoring unit: a windowed time-series sampler
    over a {e modeled} clock.

    The telemetry registry ({!Telemetry}) answers "how much, ever" —
    counters and high-water gauges aggregated over a whole run. The PMU
    answers "how much, {e when}": every series chops its clock into
    fixed-width windows (a power-of-two cycle count) and keeps the last
    [depth] windows in a ring, each window accumulating the samples
    that landed in it (sum, count, peak). From the ring a series
    derives a rate (events per cycle), the peak window, and the mean
    sample — the utilization shape an online profile-guided tiering
    loop needs, at O(depth) memory per series however long the run.

    {b Clock domains.} Cycles are caller-supplied and per series: the
    KPN cosim feeds scheduler rounds, the NoC its own cycle counter,
    softcores their retired-instruction cycle count. Series from
    different domains coexist in one PMU; each ring advances on its own
    series' clock, so nothing requires the domains to agree — the
    window width is the one shared convention.

    {b Concurrency.} A PMU is a per-run object fed from the simulator's
    single domain; it is {e not} domain-safe. Hand each concurrent run
    its own instance (they are cheap) and merge at the profile layer.

    Samples round-trip through {!to_json}/{!of_json} — the persistence
    format of per-build fabric profiles in the engine store. *)

type t
type series

val create : ?window_cycles:int -> ?depth:int -> unit -> t
(** [window_cycles] (default 1024) is the fixed window width in modeled
    cycles; it must be positive. [depth] (default 64) is how many
    trailing windows each series retains. *)

val window_cycles : t -> int
val depth : t -> int

val series : t -> ?unit_:string -> string -> series
(** Fetch-or-create, insertion-ordered (like the metrics registry).
    [unit_] (default ["events"]) names what one sample counts —
    purely descriptive, carried through export. *)

val add : series -> cycle:int -> float -> unit
(** Accumulate one sample into the window containing [cycle]. Cycles
    may arrive slightly out of order; a sample older than the retained
    ring is dropped (and counted — see {!stat}). Negative cycles are
    clamped to 0. *)

val series_names : t -> string list

(** {2 Derived statistics} *)

type stat = {
  st_name : string;
  st_unit : string;
  st_total : float;  (** sum of every sample ever added *)
  st_count : int;  (** samples ever added *)
  st_dropped : int;  (** samples older than the retained ring *)
  st_last_cycle : int;  (** highest cycle observed *)
  st_rate : float;  (** [st_total / (st_last_cycle + 1)] — per-cycle over the run *)
  st_window_rate : float;  (** per-cycle rate over the retained windows only *)
  st_peak_window : float;  (** largest single-window sum *)
  st_mean : float;  (** mean sample value ([st_total / st_count]) *)
  st_peak : float;  (** largest single sample *)
}

val stat : t -> string -> stat option
val stats : t -> stat list

type window = {
  w_index : int;  (** window number: cycles [w_index * window_cycles ..) *)
  w_sum : float;
  w_count : int;
  w_peak : float;
}

val windows : t -> string -> window list
(** The retained ring of a series, oldest first; empty for an unknown
    name. *)

(** {2 Persistence} *)

val to_json : t -> Json.t
(** The full PMU state — configuration, every series' totals and
    retained windows — as a JSON document. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}: [of_json (to_json t)] reconstructs a PMU
    whose {!stats} and {!windows} equal [t]'s. *)

(** {2 Rendering} *)

val render : t -> string list
(** One aligned line per series: rate, peak window, mean — the
    human-readable counterpart of {!to_json}. *)
