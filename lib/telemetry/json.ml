type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------- printing ---------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN or infinity; a non-finite measurement serializes as
   null rather than producing an unparseable file. *)
let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else (* "%g" may print an integral float as "3"; still valid JSON *)
    Printf.sprintf "%.12g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_into buf s
    | List l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          l;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_into buf k;
            Buffer.add_char buf ':';
            go x)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let pretty v =
  let buf = Buffer.create 256 in
  let pad depth = Buffer.add_string buf (String.make (2 * depth) ' ') in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_into buf s
    | List [] -> Buffer.add_string buf "[]"
    | List l ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (depth + 1);
            go (depth + 1) x)
          l;
        Buffer.add_char buf '\n';
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (depth + 1);
            escape_into buf k;
            Buffer.add_string buf ": ";
            go (depth + 1) x)
          fields;
        Buffer.add_char buf '\n';
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

(* Encode a Unicode code point as UTF-8 bytes. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

(* Strict 4-hex-digit reader for \u escapes: [int_of_string "0x..."]
   would also accept underscores and sign characters from the source
   text, which are not legal JSON. [st.pos] is on the 'u'; on success
   it advances past the fourth digit. *)
let parse_hex4 st =
  if st.pos + 5 > String.length st.src then fail st "truncated \\u escape";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail st "bad \\u escape"
  in
  let cp = ref 0 in
  for i = 1 to 4 do
    cp := (!cp lsl 4) lor digit st.src.[st.pos + i]
  done;
  st.pos <- st.pos + 4;
  !cp

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> begin
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
            let cp = parse_hex4 st in
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              (* High surrogate: JSON encodes astral code points as a
                 \uD8xx\uDCxx pair. Combine when the low half follows;
                 a lone surrogate is not a code point — decode it to
                 U+FFFD rather than emitting invalid UTF-8. *)
              if
                st.pos + 2 < String.length st.src
                && st.src.[st.pos + 1] = '\\'
                && st.src.[st.pos + 2] = 'u'
              then begin
                let save = st.pos in
                st.pos <- st.pos + 2;
                let lo = parse_hex4 st in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  add_utf8 buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                else begin
                  st.pos <- save;
                  add_utf8 buf 0xFFFD
                end
              end
              else add_utf8 buf 0xFFFD
            end
            else if cp >= 0xDC00 && cp <= 0xDFFF then add_utf8 buf 0xFFFD
            else add_utf8 buf cp
        | _ -> fail st "bad escape");
        advance st;
        go ()
      end
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let numchar = function
    | '0' .. '9' | '+' | '-' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> numchar c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  if s = "" then fail st "expected a number";
  let floaty = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s in
  if floaty then
    match float_of_string_opt s with Some f -> Float f | None -> fail st "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> ( match float_of_string_opt s with Some f -> Float f | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elems (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (elems [])
      end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let render_pretty = pretty

let write_file ?(pretty = false) ~file v =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (if pretty then render_pretty v else to_string v);
      output_char oc '\n')
