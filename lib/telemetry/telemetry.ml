type clock = Wall | Modeled

type span = {
  name : string;
  cat : string;
  track : int;
  clock : clock;
  start_us : float;
  dur_us : float option;
  attrs : (string * string) list;
}

type counter = { c_lock : Mutex.t; mutable c_value : int }
type gauge = { g_lock : Mutex.t; mutable g_value : float; mutable g_set : bool }

type histogram = {
  h_lock : Mutex.t;
  h_edges : float array;  (** ascending upper bounds *)
  h_counts : int array;  (** length = edges + 1; last bucket is +inf *)
  mutable h_sum : float;
  mutable h_n : int;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_samples : float list;  (** reversed, capped *)
  mutable h_sample_n : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  lock : Mutex.t;
  mutable epoch : float;
  mutable events : span list;  (** reversed *)
  mutable event_count : int;
  mutable dropped : int;
  metrics : (string, metric) Hashtbl.t;
  mutable metric_order : string list;  (** reversed insertion order *)
  track_names : (string * clock * int, string) Hashtbl.t;
  mutable next_track : int;
}

(* Storage caps: a runaway cosim can emit millions of firing spans; past
   the cap they are counted, not kept, so memory stays bounded and the
   export stays loadable. *)
let max_events = 200_000
let max_samples = 10_000

let create () =
  {
    lock = Mutex.create ();
    epoch = Unix.gettimeofday ();
    events = [];
    event_count = 0;
    dropped = 0;
    metrics = Hashtbl.create 64;
    metric_order = [];
    track_names = Hashtbl.create 16;
    (* Allocated tracks start high so they never collide with worker or
       domain ids used as tracks directly. *)
    next_track = 1000;
  }

let default = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let reset t =
  locked t (fun () ->
      t.epoch <- Unix.gettimeofday ();
      t.events <- [];
      t.event_count <- 0;
      t.dropped <- 0;
      Hashtbl.reset t.metrics;
      t.metric_order <- [];
      Hashtbl.reset t.track_names;
      t.next_track <- 1000)

let now_us t = (Unix.gettimeofday () -. t.epoch) *. 1e6

let domain_track () = (Domain.self () :> int)

let add_event t s =
  locked t (fun () ->
      if t.event_count >= max_events then t.dropped <- t.dropped + 1
      else begin
        t.events <- s :: t.events;
        t.event_count <- t.event_count + 1
      end)

let span t ?(cat = "misc") ?track ?(clock = Wall) ?(attrs = []) ~name ~start_us ~dur_us () =
  let track = match track with Some k -> k | None -> domain_track () in
  add_event t { name; cat; track; clock; start_us; dur_us = Some dur_us; attrs }

let instant t ?(cat = "misc") ?track ?(attrs = []) name =
  let track = match track with Some k -> k | None -> domain_track () in
  add_event t { name; cat; track; clock = Wall; start_us = now_us t; dur_us = None; attrs }

let with_span t ?(cat = "misc") ?track ?(attrs = []) name f =
  let track = match track with Some k -> k | None -> domain_track () in
  let t0 = now_us t in
  let close extra =
    add_event t
      { name; cat; track; clock = Wall; start_us = t0; dur_us = Some (now_us t -. t0); attrs = attrs @ extra }
  in
  match f () with
  | v ->
      close [];
      v
  | exception e ->
      close [ ("error", Printexc.to_string e) ];
      raise e

let set_track_name t ?(clock = Wall) ~cat ~track name =
  locked t (fun () -> Hashtbl.replace t.track_names (cat, clock, track) name)

let alloc_track t ?(clock = Wall) ~cat name =
  locked t (fun () ->
      let k = t.next_track in
      t.next_track <- k + 1;
      Hashtbl.replace t.track_names (cat, clock, k) name;
      k)

type modeled_track = { mt_cat : string; mt_track : int; mt_cursor : float ref }

let modeled_track t ~cat ~name =
  { mt_cat = cat; mt_track = alloc_track t ~clock:Modeled ~cat name; mt_cursor = ref 0.0 }

let modeled_span t mt ?attrs name seconds =
  let start_us = !(mt.mt_cursor) in
  let dur_us = seconds *. 1e6 in
  mt.mt_cursor := start_us +. dur_us;
  span t ~cat:mt.mt_cat ~track:mt.mt_track ~clock:Modeled ?attrs ~name ~start_us ~dur_us ()

let spans t = locked t (fun () -> List.rev t.events)
let dropped_spans t = locked t (fun () -> t.dropped)

(* ---------- metrics registry ---------- *)

let register (type v) t name (select : metric -> v option) (make : unit -> metric * v) : v =
  locked t (fun () ->
      match Hashtbl.find_opt t.metrics name with
      | Some m -> (
          match select m with
          | Some v -> v
          | None -> invalid_arg (Printf.sprintf "Telemetry: metric %s exists with another kind" name))
      | None ->
          let m, v = make () in
          Hashtbl.replace t.metrics name m;
          t.metric_order <- name :: t.metric_order;
          v)

let counter t name =
  register t name
    (function Counter c -> Some c | _ -> None)
    (fun () ->
      let c = { c_lock = t.lock; c_value = 0 } in
      (Counter c, c))

let incr ?(by = 1) c =
  Mutex.lock c.c_lock;
  c.c_value <- c.c_value + by;
  Mutex.unlock c.c_lock

let gauge t name =
  register t name
    (function Gauge g -> Some g | _ -> None)
    (fun () ->
      let g = { g_lock = t.lock; g_value = 0.0; g_set = false } in
      (Gauge g, g))

let set_gauge g v =
  Mutex.lock g.g_lock;
  g.g_value <- v;
  g.g_set <- true;
  Mutex.unlock g.g_lock

let max_gauge g v =
  Mutex.lock g.g_lock;
  if (not g.g_set) || v > g.g_value then g.g_value <- v;
  g.g_set <- true;
  Mutex.unlock g.g_lock

let default_buckets =
  [ 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0; 1000.0; 10000.0 ]

let histogram t ?(buckets = default_buckets) name =
  if buckets = [] then invalid_arg "Telemetry.histogram: no bucket edges";
  let edges = Array.of_list buckets in
  Array.iteri
    (fun i e -> if i > 0 && e <= edges.(i - 1) then invalid_arg "Telemetry.histogram: edges must ascend")
    edges;
  register t name
    (function Histogram h -> Some h | _ -> None)
    (fun () ->
      let h =
        {
          h_lock = t.lock;
          h_edges = edges;
          h_counts = Array.make (Array.length edges + 1) 0;
          h_sum = 0.0;
          h_n = 0;
          h_min = Float.infinity;
          h_max = Float.neg_infinity;
          h_samples = [];
          h_sample_n = 0;
        }
      in
      (Histogram h, h))

let observe h x =
  Mutex.lock h.h_lock;
  let n = Array.length h.h_edges in
  let rec slot i = if i >= n then n else if x <= h.h_edges.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. x;
  h.h_n <- h.h_n + 1;
  if x < h.h_min then h.h_min <- x;
  if x > h.h_max then h.h_max <- x;
  if h.h_sample_n < max_samples then begin
    h.h_samples <- x :: h.h_samples;
    h.h_sample_n <- h.h_sample_n + 1
  end;
  Mutex.unlock h.h_lock

let find_metric t name = locked t (fun () -> Hashtbl.find_opt t.metrics name)

let counter_value t name =
  match find_metric t name with Some (Counter c) -> c.c_value | _ -> 0

let gauge_value t name =
  match find_metric t name with
  | Some (Gauge g) when g.g_set -> Some g.g_value
  | _ -> None

let bucket_counts t name =
  match find_metric t name with
  | Some (Histogram h) ->
      locked t (fun () ->
          List.init
            (Array.length h.h_counts)
            (fun i ->
              let edge = if i < Array.length h.h_edges then h.h_edges.(i) else Float.infinity in
              (edge, h.h_counts.(i))))
  | _ -> []

let samples t name =
  match find_metric t name with
  | Some (Histogram h) -> locked t (fun () -> List.rev h.h_samples)
  | _ -> []

let metric_names t = locked t (fun () -> List.rev t.metric_order)

(* ---------- export ---------- *)

(* Snapshot under the lock, format outside it. *)
type snapshot = {
  s_events : span list;  (** chronological *)
  s_dropped : int;
  s_metrics : (string * metric) list;  (** insertion order *)
  s_track_names : ((string * clock * int) * string) list;
}

let snapshot t =
  locked t (fun () ->
      {
        s_events = List.rev t.events;
        s_dropped = t.dropped;
        s_metrics =
          List.rev_map (fun n -> (n, Hashtbl.find t.metrics n)) t.metric_order |> List.rev;
        s_track_names = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.track_names [];
      })

let process_label cat = function Wall -> cat | Modeled -> cat ^ " (modeled)"

let to_chrome_json t =
  let s = snapshot t in
  (* pid per (cat, clock), in first-appearance order. *)
  let pids = Hashtbl.create 8 in
  let order = ref [] in
  let pid_of cat clock =
    match Hashtbl.find_opt pids (cat, clock) with
    | Some p -> p
    | None ->
        let p = Hashtbl.length pids + 1 in
        Hashtbl.replace pids (cat, clock) p;
        order := (cat, clock, p) :: !order;
        p
  in
  List.iter (fun (e : span) -> ignore (pid_of e.cat e.clock)) s.s_events;
  let args_of attrs = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) attrs) in
  let event_json (e : span) =
    let base =
      [
        ("name", Json.String e.name);
        ("cat", Json.String e.cat);
        ("pid", Json.Int (pid_of e.cat e.clock));
        ("tid", Json.Int e.track);
        ("ts", Json.Float e.start_us);
      ]
    in
    match e.dur_us with
    | Some d -> Json.Obj (base @ [ ("ph", Json.String "X"); ("dur", Json.Float d); ("args", args_of e.attrs) ])
    | None -> Json.Obj (base @ [ ("ph", Json.String "i"); ("s", Json.String "t"); ("args", args_of e.attrs) ])
  in
  let meta name pid tid label =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String label) ]);
      ]
  in
  let process_meta =
    List.rev_map (fun (cat, clock, pid) -> meta "process_name" pid 0 (process_label cat clock)) !order
  in
  let thread_meta =
    List.filter_map
      (fun ((cat, clock, track), label) ->
        Option.map (fun pid -> meta "thread_name" pid track label) (Hashtbl.find_opt pids (cat, clock)))
      s.s_track_names
  in
  Json.Obj
    [
      ("traceEvents", Json.List (process_meta @ thread_meta @ List.map event_json s.s_events));
      ("displayTimeUnit", Json.String "ms");
      ("otherData", Json.Obj [ ("dropped_events", Json.Int s.s_dropped) ]);
    ]

let histogram_json h =
  let buckets =
    List.init
      (Array.length h.h_counts)
      (fun i ->
        let le =
          if i < Array.length h.h_edges then Json.Float h.h_edges.(i) else Json.String "+Inf"
        in
        Json.Obj [ ("le", le); ("count", Json.Int h.h_counts.(i)) ])
  in
  Json.Obj
    [
      ("count", Json.Int h.h_n);
      ("sum", Json.Float h.h_sum);
      ("min", if h.h_n = 0 then Json.Null else Json.Float h.h_min);
      ("max", if h.h_n = 0 then Json.Null else Json.Float h.h_max);
      ("buckets", Json.List buckets);
    ]

let to_metrics_json t =
  let s = snapshot t in
  let pick f = List.filter_map f s.s_metrics in
  Json.Obj
    [
      ( "counters",
        Json.Obj (pick (fun (n, m) -> match m with Counter c -> Some (n, Json.Int c.c_value) | _ -> None)) );
      ( "gauges",
        Json.Obj
          (pick (fun (n, m) -> match m with Gauge g when g.g_set -> Some (n, Json.Float g.g_value) | _ -> None))
      );
      ( "histograms",
        Json.Obj (pick (fun (n, m) -> match m with Histogram h -> Some (n, histogram_json h) | _ -> None)) );
      ( "spans",
        Json.Obj
          [
            ("recorded", Json.Int (List.length s.s_events));
            ("dropped", Json.Int s.s_dropped);
          ] );
    ]

let write_chrome t ~file = Json.write_file ~file (to_chrome_json t)
let write_metrics t ~file = Json.write_file ~file (to_metrics_json t)

let prometheus_name name =
  let b = Bytes.of_string ("pld_" ^ name) in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  Bytes.to_string b

let prometheus_float f =
  if Float.is_finite f then Printf.sprintf "%.17g" f
  else if f > 0.0 then "+Inf"
  else if f < 0.0 then "-Inf"
  else "NaN"

(* Label values per the exposition format: backslash, double-quote and
   newline must be escaped inside the quotes. *)
let prometheus_escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* HELP text: backslash and newline escaped (quotes are legal there). *)
let prometheus_escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let to_prometheus t =
  let s = snapshot t in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun str -> Buffer.add_string buf str; Buffer.add_char buf '\n') fmt in
  (* Every metric gets its HELP/TYPE header (unset gauges too — header
     without a sample is legal and tells the scraper the metric
     exists). HELP carries the registry's original dotted name, which
     the [pld_]-prefixed sanitized name destroys. *)
  let header pn name kind =
    line "# HELP %s pld metric %s (%s)" pn (prometheus_escape_help name) kind;
    line "# TYPE %s %s" pn kind
  in
  List.iter
    (fun (name, m) ->
      let pn = prometheus_name name in
      match m with
      | Counter c ->
          header pn name "counter";
          line "%s %d" pn c.c_value
      | Gauge g ->
          header pn name "gauge";
          if g.g_set then line "%s %s" pn (prometheus_float g.g_value)
      | Histogram h ->
          header pn name "histogram";
          let cum = ref 0 in
          Array.iteri
            (fun i n ->
              cum := !cum + n;
              let le =
                if i < Array.length h.h_edges then prometheus_float h.h_edges.(i) else "+Inf"
              in
              line "%s_bucket{le=\"%s\"} %d" pn (prometheus_escape_label le) !cum)
            h.h_counts;
          line "%s_sum %s" pn (prometheus_float h.h_sum);
          line "%s_count %d" pn h.h_n)
    s.s_metrics;
  line "# HELP pld_spans_recorded telemetry spans captured in the ring";
  line "# TYPE pld_spans_recorded gauge";
  line "pld_spans_recorded %d" (List.length s.s_events);
  line "# HELP pld_spans_dropped telemetry spans dropped by the ring";
  line "# TYPE pld_spans_dropped gauge";
  line "pld_spans_dropped %d" s.s_dropped;
  Buffer.contents buf

(* ---------- human rendering ---------- *)

let render_section title = Printf.sprintf "\n===== %s =====\n" title

let render_summary t name =
  match samples t name with
  | [] -> "(empty)"
  | xs -> Pld_util.Stats.summary xs

let render_histogram ?(bins = 6) t name =
  match samples t name with
  | [] -> []
  | xs ->
      List.map
        (fun (lo, hi, n) -> Printf.sprintf "    %6.2f-%-6.2f %s" lo hi (String.make n '#'))
        (Pld_util.Stats.histogram ~bins xs)

let render_one (name, m) =
  match m with
  | Counter c -> Printf.sprintf "counter %-36s %d" name c.c_value
  | Gauge g -> Printf.sprintf "gauge   %-36s %s" name (if g.g_set then Printf.sprintf "%g" g.g_value else "(unset)")
  | Histogram h ->
      if h.h_n = 0 then Printf.sprintf "hist    %-36s (empty)" name
      else
        Printf.sprintf "hist    %-36s n=%d mean=%.3g min=%.3g max=%.3g" name h.h_n
          (h.h_sum /. float_of_int h.h_n) h.h_min h.h_max

let render_metrics t =
  let s = snapshot t in
  List.map render_one s.s_metrics

let render_metric t name =
  let s = snapshot t in
  Option.map (fun m -> render_one (name, m)) (List.assoc_opt name s.s_metrics)
