(** Shared quantile estimators.

    Two forms, matching the two places latency lives in this codebase:
    raw sample lists (what [bench service] collects per session) and
    histogram bucket counts (what the metrics registry and the
    service's per-tenant latency arrays keep when samples would be
    unbounded). Both are pure functions, so the service, the bench
    harness and the daemon's status endpoint all report the same
    p50/p95/p99 arithmetic. *)

val of_samples : float list -> float -> float
(** [of_samples xs q] with [q] in [0,1] — nearest-rank on a sorted
    copy of [xs]; [0.0] for an empty list. This is the estimator the
    service and bench tiers have always used, so migrating onto it
    changes no baseline numbers. *)

val of_buckets : (float * int) list -> float -> float
(** [of_buckets buckets q] estimates the [q]-quantile from cumulative
    bucket counts, where [buckets] is [(upper_edge, count)] per bucket
    in ascending edge order (the shape of
    {!Telemetry.bucket_counts}), the final edge may be
    [Float.infinity], and [count] is per-bucket (not cumulative).

    The estimate interpolates linearly inside the bucket holding the
    target rank, taking the previous edge (or [0.0] for the first
    bucket) as the lower bound — the standard Prometheus
    [histogram_quantile] construction. A rank landing in the [+inf]
    bucket returns the last finite edge; an empty histogram returns
    [0.0]. *)

val buckets_of_counts : edges:float array -> counts:int array -> (float * int) list
(** Pair a fixed edge array with its per-bucket count array (length
    [edges + 1], last slot the [+inf] bucket) into the [(edge, count)]
    shape {!of_buckets} consumes. *)
