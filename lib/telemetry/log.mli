(** Structured, leveled logging with a bounded ring buffer and a
    flight recorder.

    One {!t} fans each event out to up to three sinks:

    - a {b text sink} (human-readable one-liners, what used to be
      ad-hoc [Printf.eprintf] calls in the daemon and CLI);
    - a {b JSONL sink} (one JSON object per line with
      level/subsystem/trace-id fields — [pldd --log-json]);
    - a {b ring buffer} (always on, bounded) holding the most recent
      events for post-mortem dumps.

    The {b flight recorder} turns the ring into a crash artifact: once
    armed with a file and a telemetry sink, {!trip_flight} (and, by
    default, any [Error]-level event) atomically writes the last N
    events plus a full metrics snapshot — so a watchdog kill or a
    crashing daemon still leaves a recent, machine-readable record of
    what it was doing.

    All operations are mutex-protected and safe from any domain or
    thread. Events below the logger's level are dropped entirely (no
    sink, no ring). *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_name : string -> level option

type event = {
  ev_ts : float;  (** Unix seconds *)
  ev_level : level;
  ev_sub : string;  (** subsystem, e.g. ["service.queue"], ["daemon"] *)
  ev_msg : string;
  ev_trace : string option;  (** request trace id, when in a request's context *)
  ev_fields : (string * string) list;  (** structured key/values *)
}

val event_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result
val render : event -> string
(** Human one-liner: [HH:MM:SS LEVEL sub: msg key=value ... trace=id]. *)

type t

val create : ?level:level -> ?ring_limit:int -> unit -> t
(** A logger with no sinks: events at or above [level] (default
    [Info]) land in the ring (bounded at [ring_limit], default 512)
    and nowhere else until sinks are set. *)

val default : t
(** The process-wide logger ([Info], ring only) every subsystem logs
    into unless handed an explicit one. *)

val set_level : t -> level -> unit
val set_text_sink : t -> (string -> unit) option -> unit
(** Rendered lines; [None] removes the sink. *)

val set_json_sink : t -> (string -> unit) option -> unit
(** One compact JSON line per event (no trailing newline); [None]
    removes the sink. *)

val log : t -> ?trace:string -> ?fields:(string * string) list -> level -> sub:string -> string -> unit

val debug : t -> ?trace:string -> ?fields:(string * string) list -> sub:string -> string -> unit
val info : t -> ?trace:string -> ?fields:(string * string) list -> sub:string -> string -> unit
val warn : t -> ?trace:string -> ?fields:(string * string) list -> sub:string -> string -> unit
val error : t -> ?trace:string -> ?fields:(string * string) list -> sub:string -> string -> unit

val events : t -> event list
(** The ring's contents, oldest first. *)

(** {2 Flight recorder} *)

val arm_flight : t -> ?trip_on_error:bool -> telemetry:Telemetry.t -> file:string -> unit -> unit
(** Arm the recorder: {!trip_flight} writes [file]; with
    [trip_on_error] (default true) every [Error]-level event trips it
    too, so a watchdog kill dumps without anyone remembering to. *)

val disarm_flight : t -> unit

val flight_json : t -> reason:string -> telemetry:Telemetry.t -> Json.t
(** The dump document without writing it: the reason, the ring's
    events, and {!Telemetry.to_metrics_json} of [telemetry]. *)

val trip_flight : t -> reason:string -> unit
(** Write the dump atomically (tmp + rename, so a reader never sees a
    torn file). No-op when not armed; write failures are swallowed —
    the flight recorder must never take the process down with it. *)

(** {2 Trace ids} *)

val mint_trace_id : unit -> string
(** A process-unique 16-hex-digit request trace id (time, pid and a
    process-local counter) — minted client-side, carried on the wire,
    and stamped on every span and log event of that request's life. *)
