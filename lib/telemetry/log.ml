type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

let level_of_name = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type event = {
  ev_ts : float;
  ev_level : level;
  ev_sub : string;
  ev_msg : string;
  ev_trace : string option;
  ev_fields : (string * string) list;
}

let event_json e =
  let base =
    [
      ("ts", Json.Float e.ev_ts);
      ("level", Json.String (level_name e.ev_level));
      ("sub", Json.String e.ev_sub);
      ("msg", Json.String e.ev_msg);
    ]
  in
  let trace = match e.ev_trace with Some id -> [ ("trace", Json.String id) ] | None -> [] in
  let fields =
    match e.ev_fields with
    | [] -> []
    | fs -> [ ("fields", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) fs)) ]
  in
  Json.Obj (base @ trace @ fields)

let event_of_json j =
  let str k = match Json.member k j with Some (Json.String s) -> Some s | _ -> None in
  let num k =
    match Json.member k j with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int n) -> Some (float_of_int n)
    | _ -> None
  in
  match (num "ts", Option.bind (str "level") level_of_name, str "sub", str "msg") with
  | Some ts, Some lvl, Some sub, Some msg ->
      let fields =
        match Json.member "fields" j with
        | Some (Json.Obj kvs) ->
            List.filter_map (fun (k, v) -> match v with Json.String s -> Some (k, s) | _ -> None) kvs
        | _ -> []
      in
      Ok { ev_ts = ts; ev_level = lvl; ev_sub = sub; ev_msg = msg; ev_trace = str "trace"; ev_fields = fields }
  | _ -> Error "log event: missing ts/level/sub/msg"

let render e =
  let tm = Unix.localtime e.ev_ts in
  let fields = List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) e.ev_fields in
  let trace = match e.ev_trace with Some id -> Printf.sprintf " trace=%s" id | None -> "" in
  Printf.sprintf "%02d:%02d:%02d %-5s %s: %s%s%s" tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
    (String.uppercase_ascii (level_name e.ev_level))
    e.ev_sub e.ev_msg (String.concat "" fields) trace

type flight = { fl_telemetry : Telemetry.t; fl_file : string; fl_trip_on_error : bool }

type t = {
  lock : Mutex.t;
  mutable min_level : level;
  ring_limit : int;
  ring : event Queue.t;
  mutable text_sink : (string -> unit) option;
  mutable json_sink : (string -> unit) option;
  mutable flight : flight option;
}

let create ?(level = Info) ?(ring_limit = 512) () =
  {
    lock = Mutex.create ();
    min_level = level;
    ring_limit = max 1 ring_limit;
    ring = Queue.create ();
    text_sink = None;
    json_sink = None;
    flight = None;
  }

let default = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_level t lvl = locked t (fun () -> t.min_level <- lvl)
let set_text_sink t sink = locked t (fun () -> t.text_sink <- sink)
let set_json_sink t sink = locked t (fun () -> t.json_sink <- sink)

let events t = locked t (fun () -> List.of_seq (Queue.to_seq t.ring))

(* ---------- flight recorder ---------- *)

let arm_flight t ?(trip_on_error = true) ~telemetry ~file () =
  locked t (fun () ->
      t.flight <- Some { fl_telemetry = telemetry; fl_file = file; fl_trip_on_error = trip_on_error })

let disarm_flight t = locked t (fun () -> t.flight <- None)

let flight_json t ~reason ~telemetry =
  let evs = events t in
  Json.Obj
    [
      ("reason", Json.String reason);
      ("tripped_at", Json.Float (Unix.gettimeofday ()));
      ("events", Json.List (List.map event_json evs));
      ("metrics", Telemetry.to_metrics_json telemetry);
    ]

let write_flight t fl ~reason =
  (* tmp + rename on the same directory, so a scraper racing the dump
     never reads a torn file; any failure is swallowed — the recorder
     must not add a crash to the crash. *)
  try
    let doc = flight_json t ~reason ~telemetry:fl.fl_telemetry in
    let tmp = fl.fl_file ^ ".tmp" in
    Json.write_file ~file:tmp doc;
    Sys.rename tmp fl.fl_file
  with _ -> ()

let trip_flight t ~reason =
  match locked t (fun () -> t.flight) with
  | Some fl -> write_flight t fl ~reason
  | None -> ()

(* ---------- emission ---------- *)

let log t ?trace ?(fields = []) level ~sub msg =
  let enabled = locked t (fun () -> level_rank level >= level_rank t.min_level) in
  if enabled then begin
    let e =
      { ev_ts = Unix.gettimeofday (); ev_level = level; ev_sub = sub; ev_msg = msg; ev_trace = trace; ev_fields = fields }
    in
    let text_sink, json_sink, flight =
      locked t (fun () ->
          Queue.push e t.ring;
          while Queue.length t.ring > t.ring_limit do
            ignore (Queue.pop t.ring)
          done;
          (t.text_sink, t.json_sink, t.flight))
    in
    (* Sinks run outside the lock: a slow file write must not serialize
       every logging thread behind it. *)
    (match text_sink with Some f -> (try f (render e) with _ -> ()) | None -> ());
    (match json_sink with Some f -> (try f (Json.to_string (event_json e)) with _ -> ()) | None -> ());
    match flight with
    | Some fl when level = Error && fl.fl_trip_on_error ->
        write_flight t fl ~reason:(Printf.sprintf "error event: %s: %s" sub msg)
    | _ -> ()
  end

let debug t ?trace ?fields ~sub msg = log t ?trace ?fields Debug ~sub msg
let info t ?trace ?fields ~sub msg = log t ?trace ?fields Info ~sub msg
let warn t ?trace ?fields ~sub msg = log t ?trace ?fields Warn ~sub msg
let error t ?trace ?fields ~sub msg = log t ?trace ?fields Error ~sub msg

(* ---------- trace ids ---------- *)

let trace_counter = Atomic.make 0

let mint_trace_id () =
  let n = Atomic.fetch_and_add trace_counter 1 in
  let us = Int64.of_float (Unix.gettimeofday () *. 1e6) in
  (* 40 bits of time (µs, wraps every ~12 days), 12 of pid, 12 of
     counter: unique within a process and effectively unique across the
     clients of one daemon. *)
  let id =
    Int64.logor
      (Int64.shift_left (Int64.logand us 0xFF_FFFF_FFFFL) 24)
      (Int64.logor
         (Int64.of_int ((Unix.getpid () land 0xFFF) lsl 12))
         (Int64.of_int (n land 0xFFF)))
  in
  Printf.sprintf "%016Lx" id
