(** Minimal JSON tree with a printer and a parser.

    The telemetry exporters need to *write* valid JSON (Chrome
    trace-event files that Perfetto loads, flat metrics documents) and
    the tests need to *read it back* to prove the files parse — without
    pulling a JSON dependency into the build. Numbers are split into
    [Int] and [Float] so counters round-trip exactly; non-finite floats
    are serialized as [null] (JSON has no NaN/infinity). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a position-annotated message. *)

val to_string : t -> string
(** Compact (single-line) serialization. *)

val pretty : t -> string
(** Indented (2-space) multi-line serialization — same document as
    {!to_string} but diffable in review. Empty lists and objects stay
    on one line. *)

val of_string : string -> t
(** Parse a complete JSON document (trailing whitespace allowed).
    Numbers without [.]/[e] that fit an OCaml [int] come back as
    [Int]; everything else numeric as [Float]. [\u]-escapes are
    decoded to UTF-8 (surrogate pairs combine into one code point; a
    lone surrogate decodes to U+FFFD). Raises {!Parse_error} on
    malformed input, with the byte offset in the message. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] for a missing field or any other
    constructor. *)

val write_file : ?pretty:bool -> file:string -> t -> unit
(** Serialize to [file] with a trailing newline (truncating any
    existing file). [pretty] (default false) selects the indented
    form — used for benchmark and regression artifacts that get
    diffed in review. *)
