let of_samples samples q =
  match samples with
  | [] -> 0.0
  | _ ->
      let a = Array.of_list samples in
      Array.sort compare a;
      let n = Array.length a in
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      a.(max 0 (min (n - 1) (rank - 1)))

let of_buckets buckets q =
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 buckets in
  if total = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let last_finite =
      List.fold_left (fun acc (e, _) -> if Float.is_finite e then e else acc) 0.0 buckets
    in
    let rec walk lower cum = function
      | [] -> last_finite
      | (edge, count) :: rest ->
          let cum' = cum + count in
          if rank <= cum' && count > 0 then
            if Float.is_finite edge then
              (* Linear interpolation inside the bucket: rank sits
                 (rank - cum) counts into a bucket of [count] counts. *)
              lower +. ((edge -. lower) *. (float_of_int (rank - cum) /. float_of_int count))
            else last_finite
          else walk (if Float.is_finite edge then edge else lower) cum' rest
    in
    walk 0.0 0 buckets
  end

let buckets_of_counts ~edges ~counts =
  List.init (Array.length counts) (fun i ->
      let edge = if i < Array.length edges then edges.(i) else Float.infinity in
      (edge, counts.(i)))
