module Fault = Pld_faults.Fault
module Telemetry = Pld_telemetry.Telemetry
module Pmu = Pld_telemetry.Pmu

type flit_kind =
  | Data of { dst_stream : int }
  | Config of { reg : int; dst_leaf_value : int; dst_stream_value : int }

type flit = {
  src_leaf : int;
  dst_leaf : int;
  mutable payload : int32;
  crc : int;
  kind : flit_kind;
  mutable age : int;
}

(* CRC-8 (poly 0x07) over the four payload bytes — the per-flit frame
   check that lets a leaf reject corrupted deliveries. *)
let flit_crc (payload : int32) =
  let crc = ref 0 in
  for i = 0 to 3 do
    let byte = Int32.to_int (Int32.logand (Int32.shift_right_logical payload (8 * i)) 0xFFl) in
    crc := !crc lxor byte;
    for _ = 1 to 8 do
      crc := if !crc land 0x80 <> 0 then (!crc lsl 1) lxor 0x07 land 0xFF else !crc lsl 1 land 0xFF
    done
  done;
  !crc

let data_flit ?(src_leaf = 0) ~dst_leaf ~dst_stream payload =
  { src_leaf; dst_leaf; payload; crc = flit_crc payload; kind = Data { dst_stream }; age = 0 }

let config_flit ?(src_leaf = 0) ~dst_leaf ~reg ~dst_leaf_value ~dst_stream_value () =
  let payload =
    Int32.of_int (((reg land 0xFF) lsl 16) lor ((dst_leaf_value land 0xFF) lsl 8) lor (dst_stream_value land 0xFF))
  in
  {
    src_leaf;
    dst_leaf;
    payload;
    crc = flit_crc payload;
    kind = Config { reg; dst_leaf_value; dst_stream_value };
    age = 0;
  }

(* A sender retransmission: re-frame the (possibly corrupted) payload
   with a fresh CRC and age. *)
let refresh f = { f with crc = flit_crc f.payload; age = 0 }

(* Link registers: one flit in flight per link per cycle. *)
type t = {
  depth : int;  (** tree levels of switches *)
  leaves : int;  (** 4^depth leaf slots *)
  cur : flit option array;
  nxt : flit option array;
  leaf_up : int array;  (** link id: leaf -> level-1 switch *)
  leaf_down : int array;
  (* up_pair.(l-1).(i).(k): level-l switch i -> its parent, k in 0..1;
     down_pair mirrors it. Level depth has no parents. *)
  up_pair : int array array array;
  down_pair : int array array array;
  pending_inject : flit option array;
  eject_buf : (int * int32) Queue.t array;
  routes : (int * int, int * int) Hashtbl.t;
  overflow : flit Queue.t array array;  (** per level-1.. switch spill queue *)
  mutable faults : Fault.t option;
  lost : flit Queue.t;  (** dropped / CRC-rejected flits awaiting retransmit *)
  link_drops : int array;
  link_corrupts : int array;
  link_flits : int array;  (** flits placed on each link, ever *)
  tele : Telemetry.t;
  hop_hist : Telemetry.histogram;  (** delivered-flit age in cycles *)
  (* Counter handles are cached: deliver/transmit/deflect are the
     simulator's hottest paths and a registry lookup per event would
     dominate them. *)
  c_delivered : Telemetry.counter;
  c_dropped : Telemetry.counter;
  c_corrupted : Telemetry.counter;
  c_crc_rejects : Telemetry.counter;
  c_deflections : Telemetry.counter;
  (* PMU series (NoC cycle clock). Link series are created on first
     traffic so an idle link costs nothing; same hot-path-caching
     rationale as the counters above. *)
  pmu : Pmu.t option;
  pmu_link : Pmu.series option array;
  pmu_qdelay : Pmu.series option;
  pmu_deflect : Pmu.series option;
  mutable cycles : int;
  mutable in_flight : int;
  mutable delivered : int;
  mutable deflections : int;
  mutable dropped : int;
  mutable corrupted : int;
  mutable max_latency : int;
  mutable total_latency : int;
}

let switches_at_level t l = t.leaves / (1 lsl (2 * l)) (* 4^depth / 4^l *)

(* Hop latencies are small integers of cycles; power-of-two edges keep
   the histogram readable for both uncongested (1-8) and deflection-
   heavy (64+) traffic. *)
let hop_buckets = [ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. ]

let create ?(leaves = 32) ?faults ?(telemetry = Telemetry.default) ?pmu () =
  let depth =
    let rec go d = if 1 lsl (2 * d) >= leaves then d else go (d + 1) in
    go 1
  in
  let leaves = 1 lsl (2 * depth) in
  let nlinks = ref 0 in
  let fresh () =
    let id = !nlinks in
    incr nlinks;
    id
  in
  let leaf_up = Array.init leaves (fun _ -> fresh ()) in
  let leaf_down = Array.init leaves (fun _ -> fresh ()) in
  let up_pair =
    Array.init (depth - 1) (fun l ->
        let n = leaves / (1 lsl (2 * (l + 1))) in
        Array.init n (fun _ -> Array.init 2 (fun _ -> fresh ())))
  in
  let down_pair =
    Array.init (depth - 1) (fun l ->
        let n = leaves / (1 lsl (2 * (l + 1))) in
        Array.init n (fun _ -> Array.init 2 (fun _ -> fresh ())))
  in
  let t =
    {
      depth;
      leaves;
      cur = Array.make !nlinks None;
      nxt = Array.make !nlinks None;
      leaf_up;
      leaf_down;
      up_pair;
      down_pair;
      pending_inject = Array.make leaves None;
      eject_buf = Array.init leaves (fun _ -> Queue.create ());
      routes = Hashtbl.create 64;
      overflow =
        Array.init depth (fun l -> Array.init (leaves / (1 lsl (2 * (l + 1)))) (fun _ -> Queue.create ()));
      faults;
      lost = Queue.create ();
      link_drops = Array.make !nlinks 0;
      link_corrupts = Array.make !nlinks 0;
      link_flits = Array.make !nlinks 0;
      tele = telemetry;
      hop_hist = Telemetry.histogram telemetry ~buckets:hop_buckets "noc.hop_latency";
      c_delivered = Telemetry.counter telemetry "noc.delivered";
      c_dropped = Telemetry.counter telemetry "noc.dropped";
      c_corrupted = Telemetry.counter telemetry "noc.corrupted";
      c_crc_rejects = Telemetry.counter telemetry "noc.crc_rejects";
      c_deflections = Telemetry.counter telemetry "noc.deflections";
      pmu;
      pmu_link = Array.make !nlinks None;
      pmu_qdelay = Option.map (fun p -> Pmu.series p ~unit_:"cycles" "noc.queue_delay") pmu;
      pmu_deflect = Option.map (fun p -> Pmu.series p ~unit_:"deflections" "noc.deflections") pmu;
      cycles = 0;
      in_flight = 0;
      delivered = 0;
      deflections = 0;
      dropped = 0;
      corrupted = 0;
      max_latency = 0;
      total_latency = 0;
    }
  in
  t

let leaf_count t = t.leaves
let level_count t = t.depth
let telemetry t = t.tele
let set_faults t f = t.faults <- f

let configure t ~leaf ~stream ~dst_leaf ~dst_stream =
  Hashtbl.replace t.routes (leaf, stream) (dst_leaf, dst_stream)

let lookup_route t ~leaf ~stream = Hashtbl.find_opt t.routes (leaf, stream)

let inject t ~leaf f =
  if leaf < 0 || leaf >= t.leaves then invalid_arg "Bft.inject: bad leaf";
  match t.pending_inject.(leaf) with
  | Some _ -> false
  | None ->
      t.pending_inject.(leaf) <- Some f;
      t.in_flight <- t.in_flight + 1;
      true

let inject_via_route t ~leaf ~stream payload =
  match lookup_route t ~leaf ~stream with
  | None -> invalid_arg (Printf.sprintf "Bft.inject_via_route: leaf %d stream %d not linked" leaf stream)
  | Some (dst_leaf, dst_stream) ->
      inject t ~leaf (data_flit ~src_leaf:leaf ~dst_leaf ~dst_stream payload)

let eject t ~leaf =
  let out = ref [] in
  while not (Queue.is_empty t.eject_buf.(leaf)) do
    out := Queue.pop t.eject_buf.(leaf) :: !out
  done;
  List.rev !out

let take_lost t =
  let out = ref [] in
  while not (Queue.is_empty t.lost) do
    out := Queue.pop t.lost :: !out
  done;
  List.rev !out

let deliver t (f : flit) =
  t.in_flight <- t.in_flight - 1;
  if flit_crc f.payload <> f.crc then begin
    (* CRC reject at the leaf: the flit never reaches the stream; the
       sender sees it in the lost queue and retransmits. *)
    Telemetry.incr t.c_crc_rejects;
    Queue.push f t.lost
  end
  else begin
    t.delivered <- t.delivered + 1;
    Telemetry.incr t.c_delivered;
    Telemetry.observe t.hop_hist (float_of_int f.age);
    (match t.pmu_qdelay with
    | Some s -> Pmu.add s ~cycle:t.cycles (float_of_int f.age)
    | None -> ());
    t.total_latency <- t.total_latency + f.age;
    if f.age > t.max_latency then t.max_latency <- f.age;
    match f.kind with
    | Data { dst_stream } -> Queue.push (dst_stream, f.payload) t.eject_buf.(f.dst_leaf)
    | Config { reg; dst_leaf_value; dst_stream_value } ->
        Hashtbl.replace t.routes (f.dst_leaf, reg) (dst_leaf_value, dst_stream_value)
  end

(* Put a flit onto a claimed output register, through the fault model:
   a dropped flit leaves the wire empty (the slot is wasted) and lands
   in the lost queue; a corrupted one travels on with a flipped bit,
   to be caught by the CRC check at delivery. *)
let transmit t link f =
  t.link_flits.(link) <- t.link_flits.(link) + 1;
  (match t.pmu with
  | Some p ->
      let s =
        match t.pmu_link.(link) with
        | Some s -> s
        | None ->
            let s = Pmu.series p ~unit_:"flits" (Printf.sprintf "noc.link.%d.flits" link) in
            t.pmu_link.(link) <- Some s;
            s
      in
      Pmu.add s ~cycle:t.cycles 1.0
  | None -> ());
  match t.faults with
  | Some fl when Fault.drop_flit fl ->
      t.link_drops.(link) <- t.link_drops.(link) + 1;
      t.dropped <- t.dropped + 1;
      Telemetry.incr t.c_dropped;
      t.in_flight <- t.in_flight - 1;
      Queue.push f t.lost
  | Some fl when Fault.corrupt_flit fl ->
      t.link_corrupts.(link) <- t.link_corrupts.(link) + 1;
      t.corrupted <- t.corrupted + 1;
      Telemetry.incr t.c_corrupted;
      f.payload <- Int32.logxor f.payload (Fault.corrupt_mask fl);
      t.nxt.(link) <- Some f
  | _ -> t.nxt.(link) <- Some f

(* Leaves covered by switch [i] at level [l]: [i*4^l, (i+1)*4^l). *)
let covers l i leaf =
  let span = 1 lsl (2 * l) in
  leaf >= i * span && leaf < (i + 1) * span

let step t =
  t.cycles <- t.cycles + 1;
  Array.fill t.nxt 0 (Array.length t.nxt) None;
  (* Deliver flits that arrived on leaf down-links last cycle. *)
  for leaf = 0 to t.leaves - 1 do
    match t.cur.(t.leaf_down.(leaf)) with
    | Some f -> deliver t f
    | None -> ()
  done;
  (* Process switches level by level; each consumes its input link
     registers (cur) and claims output registers (nxt). *)
  for l = 1 to t.depth do
    let nsw = switches_at_level t l in
    for i = 0 to nsw - 1 do
      (* Input links. *)
      let child_in =
        if l = 1 then List.init 4 (fun c -> t.leaf_up.((i * 4) + c))
        else
          List.concat
            (List.init 4 (fun c ->
                 Array.to_list t.up_pair.(l - 2).((i * 4) + c)))
      in
      let parent_in = if l = t.depth then [] else Array.to_list t.down_pair.(l - 1).(i) in
      let inputs =
        List.filter_map (fun link -> Option.map (fun f -> f) t.cur.(link)) (child_in @ parent_in)
      in
      (* Spilled flits from previous cycles re-enter with priority. *)
      let spill = t.overflow.(l - 1).(i) in
      let inputs = Queue.fold (fun acc f -> f :: acc) inputs spill in
      Queue.clear spill;
      (* Output ports toward child c. *)
      let down_port c =
        if l = 1 then [ t.leaf_down.((i * 4) + c) ]
        else Array.to_list t.down_pair.(l - 2).((i * 4) + c)
      in
      let up_ports = if l = t.depth then [] else Array.to_list t.up_pair.(l - 1).(i) in
      let taken = Hashtbl.create 8 in
      let try_claim link =
        if Hashtbl.mem taken link || t.nxt.(link) <> None then false
        else begin
          Hashtbl.replace taken link ();
          true
        end
      in
      (* Oldest first. *)
      let inputs = List.sort (fun a b -> compare b.age a.age) inputs in
      List.iter
        (fun f ->
          f.age <- f.age + 1;
          let child_of_dst =
            let rec find c = if c >= 4 then None else if covers (l - 1) ((i * 4) + c) f.dst_leaf then Some c else find (c + 1) in
            if covers l i f.dst_leaf then find 0 else None
          in
          let place link = transmit t link f in
          let rec first_free = function
            | [] -> None
            | link :: rest -> if try_claim link then Some link else first_free rest
          in
          let preferred =
            match child_of_dst with
            | Some c -> first_free (down_port c)
            | None -> first_free up_ports
          in
          match preferred with
          | Some link -> place link
          | None -> begin
              (* Deflect: any free switch-to-switch port (never a wrong
                 leaf port); as a last resort spill into the switch
                 queue. *)
              t.deflections <- t.deflections + 1;
              Telemetry.incr t.c_deflections;
              (match t.pmu_deflect with
              | Some s -> Pmu.add s ~cycle:t.cycles 1.0
              | None -> ());
              let candidates =
                up_ports
                @ (if l = 1 then []
                   else List.concat (List.init 4 (fun c -> down_port c)))
              in
              match first_free candidates with
              | Some link -> place link
              | None -> Queue.push f spill
            end)
        inputs
    done
  done;
  (* Injections onto free leaf up-links (the injection wire is a link
     too, so it shares the fault model). *)
  for leaf = 0 to t.leaves - 1 do
    match t.pending_inject.(leaf) with
    | Some f when t.nxt.(t.leaf_up.(leaf)) = None ->
        transmit t t.leaf_up.(leaf) f;
        t.pending_inject.(leaf) <- None
    | _ -> ()
  done;
  Array.blit t.nxt 0 t.cur 0 (Array.length t.cur)

type stats = {
  cycles : int;
  delivered : int;
  deflections : int;
  dropped : int;
  corrupted : int;
  max_latency : int;
  total_latency : int;
}

let stats (t : t) =
  {
    cycles = t.cycles;
    delivered = t.delivered;
    deflections = t.deflections;
    dropped = t.dropped;
    corrupted = t.corrupted;
    max_latency = t.max_latency;
    total_latency = t.total_latency;
  }

let link_faults t =
  let out = ref [] in
  for link = Array.length t.link_drops - 1 downto 0 do
    if t.link_drops.(link) > 0 || t.link_corrupts.(link) > 0 then
      out := (link, t.link_drops.(link), t.link_corrupts.(link)) :: !out
  done;
  !out

let link_traffic t =
  let out = ref [] in
  for link = Array.length t.link_flits - 1 downto 0 do
    if t.link_flits.(link) > 0 then out := (link, t.link_flits.(link)) :: !out
  done;
  !out

let run_until_idle ?(max_cycles = 1_000_000) (t : t) =
  let start = t.cycles in
  while t.in_flight > 0 do
    if t.cycles - start > max_cycles then failwith "Bft.run_until_idle: exceeded max cycles";
    step t
  done
