module Telemetry = Pld_telemetry.Telemetry

type link = {
  src_leaf : int;
  src_stream : int;
  dst_leaf : int;
  dst_stream : int;
  tokens : int;
}

type result = {
  cycles : int;
  delivered : int;
  deflections : int;
  dropped : int;
  corrupted : int;
  retransmitted : int;
  avg_latency : float;
}

let total_tokens links = List.fold_left (fun acc l -> acc + l.tokens) 0 links

let configure_links net links =
  List.iter
    (fun l ->
      Bft.configure net ~leaf:l.src_leaf ~stream:l.src_stream ~dst_leaf:l.dst_leaf
        ~dst_stream:l.dst_stream)
    links

(* The overlay NoC clock: modeled spans convert cycles to seconds. *)
let overlay_hz = 200.0e6

let replay ?(max_cycles = 10_000_000) net links =
  let tele = Bft.telemetry net in
  Telemetry.with_span tele ~cat:"noc"
    ~attrs:[ ("links", string_of_int (List.length links)) ]
    "replay"
  @@ fun () ->
  configure_links net links;
  let start = Bft.stats net in
  let total = List.fold_left (fun acc l -> acc + l.tokens) 0 links in
  (* Per-leaf round-robin schedule over its outgoing streams. *)
  let by_leaf = Hashtbl.create 8 in
  List.iter
    (fun l ->
      if l.tokens > 0 then
        Hashtbl.replace by_leaf l.src_leaf
          (Option.value ~default:[] (Hashtbl.find_opt by_leaf l.src_leaf) @ [ (l, ref l.tokens) ]))
    links;
  (* Sender-side retransmission queues: lost flits go back to their
     source leaf and take priority over fresh tokens on its single
     injection port. *)
  let retx : (int, Bft.flit Queue.t) Hashtbl.t = Hashtbl.create 8 in
  let retransmitted = ref 0 in
  let cycles = ref 0 in
  let remaining = ref total in
  (* Track deliveries by draining eject buffers every cycle. *)
  let leaves = Bft.leaf_count net in
  while !remaining > 0 do
    if !cycles > max_cycles then failwith "Traffic.replay: exceeded max cycles";
    incr cycles;
    List.iter
      (fun (f : Bft.flit) ->
        let q =
          match Hashtbl.find_opt retx f.Bft.src_leaf with
          | Some q -> q
          | None ->
              let q = Queue.create () in
              Hashtbl.replace retx f.Bft.src_leaf q;
              q
        in
        Queue.push f q)
      (Bft.take_lost net);
    let retried = Hashtbl.create 8 in
    Hashtbl.iter
      (fun leaf q ->
        match Queue.peek_opt q with
        | Some f when Bft.inject net ~leaf (Bft.refresh f) ->
            ignore (Queue.pop q);
            incr retransmitted;
            Hashtbl.replace retried leaf ()
        | _ -> ())
      retx;
    let bindings = Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_leaf [] in
    List.iter
      (fun (leaf, streams) ->
        (* One injection port per leaf: pick the first stream with
           tokens left, rotating for fairness. A retransmission this
           cycle already took the port. *)
        let rec try_streams = function
          | [] -> ()
          | (l, left) :: rest ->
              if !left > 0 then begin
                if
                  (not (Hashtbl.mem retried leaf))
                  && Bft.inject_via_route net ~leaf ~stream:l.src_stream (Int32.of_int !left)
                then decr left
              end
              else try_streams rest
        in
        try_streams streams;
        (* Rotate. *)
        match streams with
        | first :: rest -> Hashtbl.replace by_leaf leaf (rest @ [ first ])
        | [] -> ())
      bindings;
    Bft.step net;
    for leaf = 0 to leaves - 1 do
      let got = Bft.eject net ~leaf in
      remaining := !remaining - List.length got
    done
  done;
  let fin = Bft.stats net in
  let delivered = fin.Bft.delivered - start.Bft.delivered in
  Telemetry.incr ~by:!retransmitted (Telemetry.counter tele "noc.retransmitted");
  (* Per-link utilization as high-water gauges (cumulative over the
     network's lifetime, so max keeps the final figure). *)
  List.iter
    (fun (link, flits) ->
      Telemetry.max_gauge
        (Telemetry.gauge tele (Printf.sprintf "noc.link.%d.flits" link))
        (float_of_int flits))
    (Bft.link_traffic net);
  let mt = Telemetry.modeled_track tele ~cat:"noc" ~name:"overlay replay" in
  Telemetry.modeled_span tele mt
    ~attrs:[ ("cycles", string_of_int !cycles); ("delivered", string_of_int delivered) ]
    "replay" (float_of_int !cycles /. overlay_hz);
  {
    cycles = !cycles;
    delivered;
    deflections = fin.Bft.deflections - start.Bft.deflections;
    dropped = fin.Bft.dropped - start.Bft.dropped;
    corrupted = fin.Bft.corrupted - start.Bft.corrupted;
    retransmitted = !retransmitted;
    avg_latency =
      (if delivered = 0 then 0.0
       else float_of_int (fin.Bft.total_latency - start.Bft.total_latency) /. float_of_int delivered);
  }

let config_cycles ?(max_rounds = 1000) net links =
  let tele = Bft.telemetry net in
  Telemetry.with_span tele ~cat:"noc"
    ~attrs:[ ("packets", string_of_int (List.length links)) ]
    "config"
  @@ fun () ->
  let start = (Bft.stats net).Bft.cycles in
  let pending =
    List.map
      (fun l ->
        Bft.config_flit ~src_leaf:0 ~dst_leaf:l.src_leaf ~reg:l.src_stream ~dst_leaf_value:l.dst_leaf
          ~dst_stream_value:l.dst_stream ())
      links
  in
  let rec push = function
    | [] -> ()
    | f :: rest ->
        if Bft.inject net ~leaf:0 f then push rest
        else begin
          Bft.step net;
          push (f :: rest)
        end
  in
  (* Lossy links can eat config packets too: the host notices the loss
     (readback of the routing registers) and re-sends until the whole
     batch lands. *)
  let rec drive round pending =
    if round > max_rounds then failwith "Traffic.config_cycles: exceeded retransmission rounds";
    push pending;
    Bft.run_until_idle net;
    match Bft.take_lost net with
    | [] -> ()
    | lost -> drive (round + 1) (List.map Bft.refresh lost)
  in
  drive 0 pending;
  (Bft.stats net).Bft.cycles - start
