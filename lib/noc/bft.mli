(** Deflection-routed Butterfly-Fat-Tree linking network (§4.3).

    Single-flit packets, Hoplite-style bufferless switches: every flit
    entering a switch leaves the same cycle on *some* port — flits that
    lose arbitration for their preferred port are deflected. Switches
    are 4-ary with two parent links (the BFT "fatness"); the root has
    none. One flit per link per cycle at the 200 MHz overlay clock.

    Leaves are page endpoints; leaf 0 is conventionally the DMA/host
    interface. Each leaf's interface holds configuration registers
    mapping its local output streams to (destination leaf, destination
    stream); configuration packets update these registers in-band —
    that is the "linking in seconds" mechanism.

    Every flit carries a CRC-8 over its payload. With a fault injector
    attached ({!create}/{!set_faults}), link traversals can drop a flit
    (the wire goes quiet) or flip a payload bit (caught by the CRC
    check at the destination leaf). Both casualties land in a lost
    queue the sender drains via {!take_lost} to retransmit — the NoC
    itself is unacknowledged, like the hardware it models. *)

type flit_kind =
  | Data of { dst_stream : int }
  | Config of { reg : int; dst_leaf_value : int; dst_stream_value : int }
      (** write leaf routing register [reg] at the destination leaf *)

type flit = {
  src_leaf : int;  (** injecting leaf — where a retransmission restarts *)
  dst_leaf : int;
  mutable payload : int32;  (** mutable: in-flight corruption flips bits *)
  crc : int;  (** CRC-8 of the payload as framed by the sender *)
  kind : flit_kind;
  mutable age : int;
}

val flit_crc : int32 -> int
(** CRC-8 (poly 0x07) over the four payload bytes. *)

val data_flit : ?src_leaf:int -> dst_leaf:int -> dst_stream:int -> int32 -> flit
(** A correctly framed data flit ([src_leaf] defaults to 0). *)

val config_flit :
  ?src_leaf:int -> dst_leaf:int -> reg:int -> dst_leaf_value:int -> dst_stream_value:int -> unit -> flit
(** A correctly framed configuration flit (payload encodes the register
    write, so corruption is detectable like any data flit). *)

val refresh : flit -> flit
(** Sender-side retransmission framing: fresh CRC over the current
    payload, age reset. *)

type t

val create :
  ?leaves:int ->
  ?faults:Pld_faults.Fault.t ->
  ?telemetry:Pld_telemetry.Telemetry.t ->
  ?pmu:Pld_telemetry.Pmu.t ->
  unit ->
  t
(** [leaves] defaults to 32 (22 pages + DMA + headroom), rounded up to
    a power of 4-ary tree capacity. [faults] attaches a link fault
    injector (drop/corrupt rates) from the start. [telemetry] (default
    the process sink) receives the [noc.hop_latency] cycle histogram
    and [noc.delivered]/[noc.dropped]/[noc.corrupted]/
    [noc.crc_rejects]/[noc.deflections] counters as the network runs.

    [pmu] (default none) receives windowed series on the NoC cycle
    clock: [noc.link.<id>.flits] per active link (utilization over
    time), [noc.queue_delay] (delivered-flit age samples), and
    [noc.deflections]. *)

val leaf_count : t -> int
val level_count : t -> int

val telemetry : t -> Pld_telemetry.Telemetry.t
(** The sink this network records into (harnesses layered on top —
    replay, config delivery — record theirs to the same place). *)

val set_faults : t -> Pld_faults.Fault.t option -> unit
(** Attach or clear the link fault injector. *)

val configure : t -> leaf:int -> stream:int -> dst_leaf:int -> dst_stream:int -> unit
(** Host-side direct register write (used by tests and by the loader
    after its config packets are delivered). *)

val lookup_route : t -> leaf:int -> stream:int -> (int * int) option
(** Current (dst_leaf, dst_stream) register value. *)

val inject : t -> leaf:int -> flit -> bool
(** Try to hand a flit to the leaf's injection port; false if the port
    is busy this cycle (caller retries next cycle). *)

val inject_via_route : t -> leaf:int -> stream:int -> int32 -> bool
(** Data injection using the leaf's configured routing register;
    raises [Invalid_argument] if the stream is not linked. *)

val eject : t -> leaf:int -> (int * int32) list
(** Drain (dst_stream, payload) data flits delivered to this leaf since
    the last call. Config flits are applied internally; flits whose CRC
    check fails are never ejected (they go to the lost queue). *)

val take_lost : t -> flit list
(** Drain the flits lost since the last call (dropped on a link, or
    CRC-rejected at delivery), oldest first. The sender {!refresh}es
    and re-injects them. *)

val step : t -> unit
(** Advance one cycle. *)

type stats = {
  cycles : int;
  delivered : int;
  deflections : int;
  dropped : int;  (** flits lost on a link (fault injection) *)
  corrupted : int;  (** flits bit-flipped on a link (fault injection) *)
  max_latency : int;
  total_latency : int;
}

val stats : t -> stats

val link_faults : t -> (int * int * int) list
(** Per-link fault counters, [(link id, drops, corruptions)], links
    with at least one fault only. *)

val link_traffic : t -> (int * int) list
(** Per-link flit counters, [(link id, flits placed)], links that
    carried at least one flit only — the raw per-link utilization the
    replay harness publishes as gauges. *)

val run_until_idle : ?max_cycles:int -> t -> unit
(** Step until no flits are in flight (injection queues drained by the
    caller beforehand). Raises [Failure] past [max_cycles]. Lost flits
    are not in flight — check {!take_lost} afterwards. *)
