(** Traffic replay on the linking network: the -O1 performance model's
    bandwidth component.

    Each logical stream link carries a known token count per frame
    (measured by the functional KPN run). Every leaf has a single
    injection port (one 32-bit flit per cycle), so operators that need
    more bandwidth than one port serialize here — the paper's main
    source of -O1 slowdown (§7.4).

    Under link fault injection the replay is loss-tolerant: lost or
    CRC-rejected flits return to their source leaf and are
    retransmitted with priority over fresh tokens, so every token is
    eventually delivered and the cost shows up as extra cycles. *)

type link = {
  src_leaf : int;
  src_stream : int;
  dst_leaf : int;
  dst_stream : int;
  tokens : int;  (** flits to move across this link per frame *)
}

type result = {
  cycles : int;  (** to deliver every token, retransmissions included *)
  delivered : int;
  deflections : int;
  dropped : int;  (** flits lost on links during the replay *)
  corrupted : int;  (** flits CRC-rejected at their destination *)
  retransmitted : int;  (** sender re-injections *)
  avg_latency : float;
}

val total_tokens : link list -> int
(** Sum of per-link token counts — the exactly-once delivery oracle
    compares {!result.delivered} against this. *)

val configure_links : Bft.t -> link list -> unit
(** Program every source leaf's routing registers. *)

val replay : ?max_cycles:int -> Bft.t -> link list -> result
(** Configure, then inject round-robin per leaf until all tokens are
    delivered (retransmitting casualties). *)

val config_cycles : ?max_rounds:int -> Bft.t -> link list -> int
(** Cycles to deliver the configuration packets themselves through the
    network from the DMA leaf (leaf 0) — the paper's "link a page in a
    few packets" cost. Lost config packets are re-sent (bounded by
    [max_rounds] host retransmission rounds, default 1000). *)
