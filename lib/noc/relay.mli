(** Dedicated-wire linking (the paper's Relay-Station alternative,
    §7.5 / [64] / future work §9): instead of sharing the
    packet-switched BFT, the linker compiles application-customized
    switch pages carrying unshared point-to-point connections between
    operators.

    Performance: every link streams independently at one word per cycle
    after a pipelined latency proportional to distance — no leaf-port
    serialization, no deflections. Cost: dedicated wires and relay
    stations whose area grows with distance and link count, and the
    switch pages themselves must be re-compiled when the graph changes
    (linking is no longer a few packets). *)

type result = {
  cycles : int;  (** to drain all links' tokens *)
  relay_stations : int;  (** pipeline registers inserted *)
  wire_luts : int;  (** area cost of the dedicated links *)
  relink_seconds : float;  (** modeled switch-page recompile on re-link *)
}

exception Unknown_leaf of string
(** A link names a leaf that is neither the DMA corner (0) nor a
    floorplan page id — a misassignment that used to be silently mapped
    to the DMA corner. *)

val replay : Pld_fabric.Floorplan.t -> Traffic.link list -> result
(** Leaf indices are page ids (0 = the DMA corner). Token counts give
    the per-frame traffic; distances come from the floorplan. Raises
    {!Unknown_leaf} on a leaf outside the floorplan. *)

val describe : result -> string
