module Fp = Pld_fabric.Floorplan

type result = {
  cycles : int;
  relay_stations : int;
  wire_luts : int;
  relink_seconds : float;
}

(* A relay station every [relay_span] tiles keeps the dedicated wires
   at speed; each is a 32-bit register+valid/ready stage. *)
let relay_span = 4
let relay_luts = 40
let wire_luts_per_tile = 6
let switch_page_compile_seconds = 0.45

exception Unknown_leaf of string

let leaf_tile (fp : Fp.t) leaf =
  if leaf = 0 then (27, 2) (* the DMA/interface corner *)
  else
    match List.find_opt (fun (p : Fp.page) -> p.page_id = leaf) fp.Fp.pages with
    | Some p -> p.Fp.noc_leaf
    | None ->
        raise
          (Unknown_leaf
             (Printf.sprintf
                "Relay.leaf_tile: leaf %d is not a floorplan page (valid: 0 for DMA, page ids %s)"
                leaf
                (String.concat ", "
                   (List.map (fun (p : Fp.page) -> string_of_int p.page_id) fp.Fp.pages))))

let replay fp links =
  let active = List.filter (fun (l : Traffic.link) -> l.Traffic.tokens > 0 && l.Traffic.src_leaf <> l.Traffic.dst_leaf) links in
  let per_link (l : Traffic.link) =
    let sx, sy = leaf_tile fp l.Traffic.src_leaf in
    let dx, dy = leaf_tile fp l.Traffic.dst_leaf in
    let dist = abs (sx - dx) + abs (sy - dy) in
    let stations = dist / relay_span in
    (* Fully pipelined: latency = stations, then 1 token/cycle. *)
    (l.Traffic.tokens + stations, stations, dist * wire_luts_per_tile)
  in
  let cycles, stations, wires =
    List.fold_left
      (fun (c, s, w) l ->
        let lc, ls, lw = per_link l in
        (max c lc, s + ls, w + lw))
      (0, 0, 0) active
  in
  {
    cycles;
    relay_stations = stations;
    wire_luts = wires + (stations * relay_luts);
    relink_seconds = switch_page_compile_seconds;
  }

let describe r =
  Printf.sprintf
    "dedicated wires: %d cycles/frame, %d relay stations, %d LUTs of links, re-link = %.2f s switch-page compile"
    r.cycles r.relay_stations r.wire_luts r.relink_seconds
