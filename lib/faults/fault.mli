(** Seeded fault injection for the whole deployment path.

    One [spec] describes *what* can go wrong; one injector {!t} (a
    [spec] plus a deterministic {!Pld_util.Rng} stream and per-site
    attempt counters) decides *when* it goes wrong. Equal seeds give
    equal fault schedules, so every recovery trace is reproducible —
    the property the CI fault suite pins across seeds.

    Fault classes (DESIGN.md §9):
    - defective pages: configuration frames for the page never verify;
    - flaky page loads: the first [n] load attempts of a page corrupt
      (transient PCIe/DFX glitch), later attempts succeed;
    - lossy/corrupting NoC links: each link traversal drops or
      bit-flips the flit with the given probability;
    - softcore hang/trap: a named instance stops making progress (or
      traps) once its core passes a cycle threshold;
    - flaky compile jobs: a named engine job fails its first [n]
      attempts (transient tool crash). *)

type spec = {
  defective_pages : int list;
  drop_rate : float;  (** per link traversal, in [0,1) *)
  corrupt_rate : float;  (** per link traversal, in [0,1) *)
  flaky_loads : (int * int) list;  (** (page, first n loads corrupt) *)
  hangs : (string * int) list;  (** (instance, hang after cycles) *)
  traps : (string * int) list;  (** (instance, trap after cycles) *)
  flaky_jobs : (string * int) list;  (** (job id, first n attempts fail) *)
}

val empty : spec

val is_empty : spec -> bool

val parse : string -> (spec, string) result
(** Comma-separated items: [page=N], [drop=F], [corrupt=F],
    [load=PAGE\@N], [hang=INST\@N], [trap=INST\@N], [job=ID\@N].
    E.g. ["page=3,drop=0.01,hang=stage1@40000"]. *)

val parse_exn : string -> spec
(** Raises [Invalid_argument] with the parse error. *)

val to_string : spec -> string
(** Round-trips through {!parse}. *)

type t
(** An injector: spec + seeded RNG + attempt counters. Stateful — rate
    draws advance the RNG and load/job checks bump counters — so share
    one injector across a scenario and rebuild it (same seed) to
    replay the identical fault schedule. *)

val create : ?seed:int -> spec -> t
(** [seed] defaults to 1. *)

val seed : t -> int
val spec : t -> spec

val page_defective : t -> int -> bool

val load_corrupts : t -> page:int -> bool
(** Decide the fate of one load attempt of [page] (defective pages
    always corrupt; flaky pages corrupt their first [n] attempts).
    Counts the attempt. *)

val drop_flit : t -> bool
(** One RNG draw against [drop_rate]. *)

val corrupt_flit : t -> bool
(** One RNG draw against [corrupt_rate]. *)

val corrupt_mask : t -> int32
(** A random single-bit flip mask for a corrupted flit payload. *)

val hang_cycles : t -> inst:string -> int option
val trap_cycles : t -> inst:string -> int option

exception Injected of string
(** Raised by {!job_check} on an injected job failure, so it is
    distinguishable from a real compiler bug in traces. *)

val job_check : t -> job:string -> unit
(** Count one attempt of engine job [job] and raise {!Injected} if the
    spec makes this attempt fail. Counter-based (no RNG draw), so it
    stays deterministic under a parallel executor. *)
