module Rng = Pld_util.Rng

type spec = {
  defective_pages : int list;
  drop_rate : float;
  corrupt_rate : float;
  flaky_loads : (int * int) list;
  hangs : (string * int) list;
  traps : (string * int) list;
  flaky_jobs : (string * int) list;
}

let empty =
  {
    defective_pages = [];
    drop_rate = 0.0;
    corrupt_rate = 0.0;
    flaky_loads = [];
    hangs = [];
    traps = [];
    flaky_jobs = [];
  }

let is_empty s = s = empty

let parse_item spec item =
  let bad fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt item '=' with
  | None -> bad "fault item %S: expected KEY=VALUE" item
  | Some i -> (
      let key = String.sub item 0 i in
      let value = String.sub item (i + 1) (String.length item - i - 1) in
      let int_of what v =
        match int_of_string_opt v with
        | Some n when n >= 0 -> Ok n
        | _ -> bad "fault item %S: %s must be a non-negative integer" item what
      in
      let rate v =
        match float_of_string_opt v with
        | Some f when f >= 0.0 && f < 1.0 -> Ok f
        | _ -> bad "fault item %S: rate must be in [0,1)" item
      in
      (* NAME@N pairs (hang=inst@cycles, load=page@n, ...). *)
      let at v =
        match String.index_opt v '@' with
        | None -> bad "fault item %S: expected %s=NAME@N" item key
        | Some j ->
            let name = String.sub v 0 j in
            let n = String.sub v (j + 1) (String.length v - j - 1) in
            if name = "" then bad "fault item %S: empty name" item
            else Result.map (fun n -> (name, n)) (int_of "N" n)
      in
      match key with
      | "page" ->
          Result.map (fun p -> { spec with defective_pages = spec.defective_pages @ [ p ] })
            (int_of "page id" value)
      | "drop" -> Result.map (fun r -> { spec with drop_rate = r }) (rate value)
      | "corrupt" -> Result.map (fun r -> { spec with corrupt_rate = r }) (rate value)
      | "load" ->
          Result.bind (at value) (fun (p, n) ->
              Result.map (fun p -> { spec with flaky_loads = spec.flaky_loads @ [ (p, n) ] })
                (int_of "page id" p))
      | "hang" -> Result.map (fun h -> { spec with hangs = spec.hangs @ [ h ] }) (at value)
      | "trap" -> Result.map (fun h -> { spec with traps = spec.traps @ [ h ] }) (at value)
      | "job" -> Result.map (fun j -> { spec with flaky_jobs = spec.flaky_jobs @ [ j ] }) (at value)
      | _ -> bad "fault item %S: unknown key %S (use page/drop/corrupt/load/hang/trap/job)" item key)

let parse s =
  let items =
    String.split_on_char ',' s |> List.map String.trim |> List.filter (fun i -> i <> "")
  in
  List.fold_left (fun acc item -> Result.bind acc (fun spec -> parse_item spec item)) (Ok empty) items

let parse_exn s = match parse s with Ok spec -> spec | Error m -> invalid_arg m

let to_string s =
  let items =
    List.map (fun p -> Printf.sprintf "page=%d" p) s.defective_pages
    @ (if s.drop_rate > 0.0 then [ Printf.sprintf "drop=%g" s.drop_rate ] else [])
    @ (if s.corrupt_rate > 0.0 then [ Printf.sprintf "corrupt=%g" s.corrupt_rate ] else [])
    @ List.map (fun (p, n) -> Printf.sprintf "load=%d@%d" p n) s.flaky_loads
    @ List.map (fun (i, n) -> Printf.sprintf "hang=%s@%d" i n) s.hangs
    @ List.map (fun (i, n) -> Printf.sprintf "trap=%s@%d" i n) s.traps
    @ List.map (fun (j, n) -> Printf.sprintf "job=%s@%d" j n) s.flaky_jobs
  in
  String.concat "," items

type t = {
  t_spec : spec;
  t_seed : int;
  rng : Rng.t;  (** link-rate draws only, so rates do not shift counters *)
  load_attempts : (int, int) Hashtbl.t;
  job_attempts : (string, int) Hashtbl.t;
  job_lock : Mutex.t;  (** job checks may come from executor domains *)
}

let create ?(seed = 1) t_spec =
  {
    t_spec;
    t_seed = seed;
    rng = Rng.create seed;
    load_attempts = Hashtbl.create 8;
    job_attempts = Hashtbl.create 8;
    job_lock = Mutex.create ();
  }

let seed t = t.t_seed
let spec t = t.t_spec

let page_defective t page = List.mem page t.t_spec.defective_pages

let load_corrupts t ~page =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.load_attempts page) in
  Hashtbl.replace t.load_attempts page n;
  page_defective t page
  || (match List.assoc_opt page t.t_spec.flaky_loads with Some k -> n <= k | None -> false)

let drop_flit t = t.t_spec.drop_rate > 0.0 && Rng.float t.rng 1.0 < t.t_spec.drop_rate
let corrupt_flit t = t.t_spec.corrupt_rate > 0.0 && Rng.float t.rng 1.0 < t.t_spec.corrupt_rate
let corrupt_mask t = Int32.shift_left 1l (Rng.int t.rng 32)

let hang_cycles t ~inst = List.assoc_opt inst t.t_spec.hangs
let trap_cycles t ~inst = List.assoc_opt inst t.t_spec.traps

exception Injected of string

let job_check t ~job =
  match List.assoc_opt job t.t_spec.flaky_jobs with
  | None -> ()
  | Some k ->
      Mutex.lock t.job_lock;
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.job_attempts job) in
      Hashtbl.replace t.job_attempts job n;
      Mutex.unlock t.job_lock;
      if n <= k then
        raise (Injected (Printf.sprintf "injected fault: job %s attempt %d/%d fails" job n k))
