(** The data-center card model (§2.5, Fig. 3): static PCIe shell, a
    level-1 DFX region, and — once the PLD overlay is loaded — 22
    level-2 page slots joined by the linking network, with the DMA
    engine on NoC leaf 0.

    The card enforces the DFX discipline: page loads require the
    overlay; loading a monolithic kernel evicts it; partial loads touch
    only their page. Load times follow bitstream size over PCIe. *)

type page_state =
  | Empty
  | Hw of { operator : string; fmax_mhz : float; crc : string }
  | Softcore of { elf : Pld_riscv.Elf.packed }

type l1_state =
  | Unconfigured
  | Overlay_loaded
  | Kernel_loaded of { operators : string list; fmax_mhz : float }

type t

val create : ?faults:Pld_faults.Fault.t -> ?pmu:Pld_telemetry.Pmu.t -> unit -> t
(** A powered-on card with the vendor shell only. [faults] injects
    page-load corruption (defective/flaky pages) and is handed to the
    overlay's NoC (link drop/corrupt rates) when it is loaded.

    [pmu] (default none) receives [platform.page.<n>.loads] /
    [platform.overlay.loads] / [platform.kernel.loads] samples (bytes
    per reconfiguration event, on a modeled platform clock) and is
    likewise handed to the overlay's NoC for per-link series. *)

val set_faults : t -> Pld_faults.Fault.t option -> unit
(** Attach or clear the fault injector (also updates a live NoC). *)

val floorplan : t -> Pld_fabric.Floorplan.t
val noc : t -> Pld_noc.Bft.t
(** Live only while the overlay is loaded; raises [Failure] otherwise. *)

val l1 : t -> l1_state
val page_state : t -> int -> page_state

val dma_leaf : int
(** NoC leaf index of the DMA engine (0). *)

val page_leaf : t -> int -> int
(** NoC leaf index serving a page. *)

exception Protocol_error of string

val load : t -> Xclbin.t -> float
(** Load a container; returns modeled load seconds (PCIe at 2 GB/s
    plus configuration latency). Raises {!Protocol_error} when the
    DFX discipline is violated (e.g. a page load without overlay).
    With a fault injector attached, a defective or flaky page takes
    garbled frames — detected by {!readback_ok}, never signalled
    here (real DFX loads do not fail loudly either). *)

val readback_ok : t -> Xclbin.t -> bool
(** CRC readback-verify: digest the configuration frames the container
    targeted and compare with what it carried. [false] means the load
    must be retried or the operator relocated. *)

val reset : t -> unit
(** Clear the L1 region back to [Unconfigured]. *)

val loaded_pages : t -> (int * page_state) list

val describe : t -> string
