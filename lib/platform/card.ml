module Fault = Pld_faults.Fault
module Pmu = Pld_telemetry.Pmu

type page_state =
  | Empty
  | Hw of { operator : string; fmax_mhz : float; crc : string }
  | Softcore of { elf : Pld_riscv.Elf.packed }

type l1_state =
  | Unconfigured
  | Overlay_loaded
  | Kernel_loaded of { operators : string list; fmax_mhz : float }

type t = {
  fp : Pld_fabric.Floorplan.t;
  mutable l1 : l1_state;
  pages : (int, page_state) Hashtbl.t;
  mutable net : Pld_noc.Bft.t option;
  mutable faults : Fault.t option;
  corrupted : (int, unit) Hashtbl.t;  (** pages whose last load took bad frames *)
  pmu : Pmu.t option;
  (* Modeled platform clock for PMU samples: load seconds converted to
     overlay cycles, accumulated across the card's lifetime. *)
  mutable modeled_cycles : int;
}

exception Protocol_error of string

let overlay_hz = 200.0e6

let create ?faults ?pmu () =
  {
    fp = Pld_fabric.Floorplan.u50 ();
    l1 = Unconfigured;
    pages = Hashtbl.create 32;
    net = None;
    faults;
    corrupted = Hashtbl.create 4;
    pmu;
    modeled_cycles = 0;
  }

let set_faults t f =
  t.faults <- f;
  match t.net with Some n -> Pld_noc.Bft.set_faults n f | None -> ()

let floorplan t = t.fp

let noc t =
  match t.net with
  | Some n -> n
  | None -> failwith "Card.noc: overlay not loaded"

let l1 t = t.l1
let page_state t p = Option.value ~default:Empty (Hashtbl.find_opt t.pages p)
let dma_leaf = 0

(* Pages map to NoC leaves 1..22 in page-id order. *)
let page_leaf _t page = page

let pcie_bytes_per_sec = 2.0e9
let config_latency = 0.002

let load_seconds bytes = config_latency +. (float_of_int bytes /. pcie_bytes_per_sec)

let reset t =
  t.l1 <- Unconfigured;
  Hashtbl.reset t.pages;
  Hashtbl.reset t.corrupted;
  t.net <- None

(* Did fault injection garble this page-load attempt? *)
let load_garbled t page =
  match t.faults with Some fl -> Fault.load_corrupts fl ~page | None -> false

let load t (xb : Xclbin.t) =
  let module Telemetry = Pld_telemetry.Telemetry in
  let kind =
    match xb.Xclbin.payload with
    | Xclbin.Overlay _ -> "overlay"
    | Xclbin.Page_bits { page; _ } -> Printf.sprintf "page%d" page
    | Xclbin.Softcore { page; _ } -> Printf.sprintf "softcore%d" page
    | Xclbin.Kernel _ -> "kernel"
  in
  Telemetry.with_span Telemetry.default ~cat:"platform"
    ~attrs:[ ("bytes", string_of_int xb.Xclbin.size_bytes) ]
    ("load:" ^ kind)
  @@ fun () ->
  (match xb.Xclbin.payload with
  | Xclbin.Overlay { noc_leaves; _ } ->
      Hashtbl.reset t.pages;
      Hashtbl.reset t.corrupted;
      t.l1 <- Overlay_loaded;
      t.net <- Some (Pld_noc.Bft.create ~leaves:noc_leaves ?faults:t.faults ?pmu:t.pmu ())
  | Xclbin.Page_bits { page; operator; bitstream; fmax_mhz } -> begin
      match t.l1 with
      | Overlay_loaded ->
          (match Pld_fabric.Floorplan.find_page t.fp page with
          | _ -> ()
          | exception Not_found ->
              raise (Protocol_error (Printf.sprintf "page %d does not exist" page)));
          let crc = bitstream.Pld_pnr.Bitgen.crc in
          (* A garbled load writes bad frames: what readback digests is
             not what the bitgen produced. *)
          let crc =
            if load_garbled t page then begin
              Hashtbl.replace t.corrupted page ();
              Pld_util.Digest_lite.of_string (crc ^ ":garbled")
            end
            else begin
              Hashtbl.remove t.corrupted page;
              crc
            end
          in
          Hashtbl.replace t.pages page (Hw { operator; fmax_mhz; crc })
      | Unconfigured -> raise (Protocol_error "page load before overlay")
      | Kernel_loaded _ -> raise (Protocol_error "page load while a monolithic kernel is active")
    end
  | Xclbin.Softcore { page; elf } -> begin
      match t.l1 with
      | Overlay_loaded ->
          if load_garbled t page then Hashtbl.replace t.corrupted page ()
          else Hashtbl.remove t.corrupted page;
          Hashtbl.replace t.pages page (Softcore { elf })
      | Unconfigured -> raise (Protocol_error "softcore load before overlay")
      | Kernel_loaded _ -> raise (Protocol_error "softcore load while a monolithic kernel is active")
    end
  | Xclbin.Kernel { operators; fmax_mhz; _ } ->
      Hashtbl.reset t.pages;
      Hashtbl.reset t.corrupted;
      t.net <- None;
      t.l1 <- Kernel_loaded { operators; fmax_mhz });
  let seconds = load_seconds xb.Xclbin.size_bytes in
  (* Page-activity series on the modeled platform clock: one sample per
     (re)configuration event, weighted by its size in bytes, under the
     page it touched — the reconfiguration-churn view of the fabric. *)
  (match t.pmu with
  | Some p ->
      t.modeled_cycles <- t.modeled_cycles + int_of_float (seconds *. overlay_hz);
      let name =
        match xb.Xclbin.payload with
        | Xclbin.Overlay _ -> "platform.overlay.loads"
        | Xclbin.Page_bits { page; _ } | Xclbin.Softcore { page; _ } ->
            Printf.sprintf "platform.page.%d.loads" page
        | Xclbin.Kernel _ -> "platform.kernel.loads"
      in
      Pmu.add (Pmu.series p ~unit_:"bytes" name) ~cycle:t.modeled_cycles
        (float_of_int xb.Xclbin.size_bytes)
  | None -> ());
  seconds

(* Readback-verify: digest the configuration frames the page actually
   holds and compare against what the container was supposed to write.
   This is the loader's detection point for defective pages. *)
let readback_ok t (xb : Xclbin.t) =
  match xb.Xclbin.payload with
  | Xclbin.Page_bits { page; bitstream; _ } -> begin
      match page_state t page with
      | Hw { crc; _ } ->
          (not (Hashtbl.mem t.corrupted page)) && String.equal crc bitstream.Pld_pnr.Bitgen.crc
      | Empty | Softcore _ -> false
    end
  | Xclbin.Softcore { page; _ } -> begin
      match page_state t page with
      | Softcore _ -> not (Hashtbl.mem t.corrupted page)
      | Empty | Hw _ -> false
    end
  | Xclbin.Overlay _ -> t.l1 = Overlay_loaded
  | Xclbin.Kernel _ -> ( match t.l1 with Kernel_loaded _ -> true | _ -> false)

let loaded_pages t =
  Hashtbl.fold (fun p s acc -> (p, s) :: acc) t.pages [] |> List.sort compare

let describe t =
  let l1 =
    match t.l1 with
    | Unconfigured -> "L1: unconfigured"
    | Overlay_loaded -> "L1: PLD overlay"
    | Kernel_loaded { operators; fmax_mhz } ->
        Printf.sprintf "L1: monolithic kernel (%d ops @ %.0f MHz)" (List.length operators) fmax_mhz
  in
  let pages =
    loaded_pages t
    |> List.map (fun (p, s) ->
           match s with
           | Empty -> Printf.sprintf "  page %d: empty" p
           | Hw { operator; fmax_mhz; _ } -> Printf.sprintf "  page %d: %s @ %.0f MHz" p operator fmax_mhz
           | Softcore { elf } ->
               Printf.sprintf "  page %d: softcore running %s" p
                 elf.Pld_riscv.Elf.program.Pld_riscv.Codegen.op_name)
  in
  String.concat "\n" (l1 :: pages)
