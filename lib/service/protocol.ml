module Json = Pld_telemetry.Json

type request =
  | Ping
  | Compile of { bench : string; level : string }
  | Run of { bench : string; level : string; frames : int }
  | Profile of { bench : string; level : string }
  | Stats
  | Status
  | Metrics
  | Health
  | Shutdown

type envelope = {
  rq_id : int;
  tenant : string;
  priority : int;
  deadline_ms : int option;
  trace : string option;
  req : request;
}

let envelope ?(id = 0) ?(tenant = "default") ?(priority = 0) ?deadline_ms ?trace req =
  { rq_id = id; tenant; priority; deadline_ms; trace; req }

let envelope_to_json e =
  let base =
    [
      ("id", Json.Int e.rq_id);
      ("tenant", Json.String e.tenant);
      ("priority", Json.Int e.priority);
    ]
    @ (match e.deadline_ms with Some ms -> [ ("deadline_ms", Json.Int ms) ] | None -> [])
    @ (match e.trace with Some id -> [ ("trace", Json.String id) ] | None -> [])
  in
  let rest =
    match e.req with
    | Ping -> [ ("op", Json.String "ping") ]
    | Stats -> [ ("op", Json.String "stats") ]
    | Status -> [ ("op", Json.String "status") ]
    | Metrics -> [ ("op", Json.String "metrics") ]
    | Health -> [ ("op", Json.String "health") ]
    | Shutdown -> [ ("op", Json.String "shutdown") ]
    | Compile { bench; level } ->
        [ ("op", Json.String "compile"); ("bench", Json.String bench); ("level", Json.String level) ]
    | Run { bench; level; frames } ->
        [
          ("op", Json.String "run");
          ("bench", Json.String bench);
          ("level", Json.String level);
          ("frames", Json.Int frames);
        ]
    | Profile { bench; level } ->
        [ ("op", Json.String "profile"); ("bench", Json.String bench); ("level", Json.String level) ]
  in
  Json.Obj (base @ rest)

let str_field name j = match Json.member name j with Some (Json.String s) -> Some s | _ -> None
let int_field name j = match Json.member name j with Some (Json.Int i) -> Some i | _ -> None

let envelope_of_json j =
  match str_field "op" j with
  | None -> Error "missing \"op\" field"
  | Some op -> (
      let id = Option.value ~default:0 (int_field "id" j) in
      let tenant = Option.value ~default:"default" (str_field "tenant" j) in
      let priority = Option.value ~default:0 (int_field "priority" j) in
      let deadline_ms = int_field "deadline_ms" j in
      let trace = str_field "trace" j in
      let level () = Option.value ~default:"O1" (str_field "level" j) in
      let with_req req = Ok { rq_id = id; tenant; priority; deadline_ms; trace; req } in
      match op with
      | "ping" -> with_req Ping
      | "stats" -> with_req Stats
      | "status" -> with_req Status
      | "metrics" -> with_req Metrics
      | "health" -> with_req Health
      | "shutdown" -> with_req Shutdown
      | "compile" -> (
          match str_field "bench" j with
          | Some bench -> with_req (Compile { bench; level = level () })
          | None -> Error "compile: missing \"bench\" field")
      | "run" -> (
          match str_field "bench" j with
          | Some bench ->
              let frames = Option.value ~default:8 (int_field "frames" j) in
              with_req (Run { bench; level = level (); frames })
          | None -> Error "run: missing \"bench\" field")
      | "profile" -> (
          match str_field "bench" j with
          | Some bench -> with_req (Profile { bench; level = level () })
          | None -> Error "profile: missing \"bench\" field")
      | other -> Error (Printf.sprintf "unknown op %S" other))

type reply = { rp_id : int; ok : bool; body : Json.t }

let reply_ok ~id body = { rp_id = id; ok = true; body }
let reply_error ~id msg = { rp_id = id; ok = false; body = Json.Obj [ ("error", Json.String msg) ] }

(* A refusal the client should treat as transient: [state] names the
   server condition (SHED, DRAINING, QUEUE_FULL, ...) and
   [retry_after_ms], when present, is the server's estimate of when
   the same request would be admitted. *)
let reply_busy ~id ?retry_after_ms ~state msg =
  {
    rp_id = id;
    ok = false;
    body =
      Json.Obj
        ([ ("error", Json.String msg); ("state", Json.String state) ]
        @
        match retry_after_ms with
        | Some ms -> [ ("retry_after_ms", Json.Int ms) ]
        | None -> []);
  }

let reply_to_json r =
  Json.Obj [ ("id", Json.Int r.rp_id); ("ok", Json.Bool r.ok); ("body", r.body) ]

let reply_of_json j =
  match (int_field "id" j, Json.member "ok" j, Json.member "body" j) with
  | Some id, Some (Json.Bool ok), Some body -> Ok { rp_id = id; ok; body }
  | _ -> Error "malformed reply (want {id, ok, body})"

let error_message r =
  match Json.member "error" r.body with Some (Json.String s) -> Some s | _ -> None

let retry_after_ms r = int_field "retry_after_ms" r.body
let reply_state r = str_field "state" r.body

(* ---------- status rendering ---------- *)

(* Renders the [Status] reply body (the document {!Service.status_json}
   builds) for humans — [pldc status] and each [pldc top] frame. Kept
   next to the wire format so the document shape and its rendering
   evolve together. *)
let render_status j =
  let str k d = match Json.member k j with Some (Json.String s) -> s | _ -> d in
  let num o k =
    match Json.member k o with
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> 0.0
  in
  let int_ o k = match Json.member k o with Some (Json.Int i) -> i | _ -> 0 in
  let obj k = match Json.member k j with Some (Json.Obj _ as o) -> o | _ -> Json.Obj [] in
  let list k = match Json.member k j with Some (Json.List l) -> l | _ -> [] in
  let q = obj "queue" in
  let c = obj "counters" in
  let head =
    Printf.sprintf "pldd up %.1fs  state=%s  queue %d deep, %d in flight (%d workers)"
      (num j "uptime_s") (str "state" "?") (int_ q "depth") (int_ q "in_flight")
      (int_ q "workers")
  in
  let counters =
    Printf.sprintf
      "counters: submitted %d  completed %d  failed %d  rejected %d  shed %d  deadline %d  lost \
       %d  watchdog %d  dedup %d  cross %d"
      (int_ c "submitted") (int_ c "completed") (int_ c "failed") (int_ c "rejected")
      (int_ c "shed") (int_ c "deadline_exceeded") (int_ c "lost") (int_ c "watchdog_kills")
      (int_ c "deduped") (int_ c "cross_tenant_hits")
  in
  let tenants =
    List.map
      (fun tj ->
        let lat = match Json.member "latency" tj with Some (Json.Obj _ as o) -> o | _ -> Json.Obj [] in
        Printf.sprintf
          "  tenant %-12s q %2d/%-3d  run %2d/%-2d  done %4d  p50 %.3fs p95 %.3fs p99 %.3fs (n=%d)"
          (match Json.member "tenant" tj with Some (Json.String s) -> s | _ -> "?")
          (int_ tj "queued") (int_ tj "max_queued") (int_ tj "in_flight")
          (int_ tj "max_in_flight") (int_ tj "completed") (num lat "p50_s") (num lat "p95_s")
          (num lat "p99_s") (int_ lat "count"))
      (list "tenants")
  in
  let builds =
    List.map
      (fun bj ->
        Printf.sprintf "  build #%d tenant=%s graph=%s level=%s age=%.2fs trace=%s" (int_ bj "id")
          (match Json.member "tenant" bj with Some (Json.String s) -> s | _ -> "?")
          (match Json.member "graph" bj with Some (Json.String s) -> s | _ -> "?")
          (match Json.member "level" bj with Some (Json.String s) -> s | _ -> "?")
          (num bj "age_s")
          (match Json.member "trace" bj with Some (Json.String s) -> s | _ -> "-"))
      (list "builds")
  in
  (head :: counters :: tenants) @ builds

let level_of_name = function
  | "O0" | "o0" | "-O0" -> Ok Pld_core.Build.O0
  | "O1" | "o1" | "-O1" -> Ok Pld_core.Build.O1
  | "O3" | "o3" | "-O3" -> Ok Pld_core.Build.O3
  | "Vitis" | "vitis" -> Ok Pld_core.Build.Vitis
  | other -> Error (Printf.sprintf "unknown level %S (want O0|O1|O3|Vitis)" other)
