(** Unix-domain-socket client for the [pldd] daemon ([pldc --connect]).

    One request per {!call}; a connection carries any number of
    sequential calls. The wire format is {!Protocol}'s
    newline-delimited JSON. *)

type t

val connect : string -> (t, string) result
(** Connect to the daemon's socket path. *)

val close : t -> unit

val call : t -> Protocol.envelope -> (Protocol.reply, string) result
(** Send one request and block for its reply. [Error] is a transport
    or parse failure; an application-level failure comes back as a
    reply with [ok = false]. *)

val rpc : socket:string -> Protocol.envelope -> (Protocol.reply, string) result
(** One-shot: connect, {!call}, close. *)
