(** Unix-domain-socket client for the [pldd] daemon ([pldc --connect]).

    One request per {!call}; a connection carries any number of
    sequential calls. The wire format is {!Protocol}'s
    newline-delimited JSON. *)

type t

val connect : string -> (t, string) result
(** Connect to the daemon's socket path. *)

val close : t -> unit

val call : t -> Protocol.envelope -> (Protocol.reply, string) result
(** Send one request and block for its reply. [Error] is a transport
    or parse failure; an application-level failure comes back as a
    reply with [ok = false]. *)

val rpc : socket:string -> Protocol.envelope -> (Protocol.reply, string) result
(** One-shot: connect, {!call}, close. *)

(** {2 Retry}

    Retrying is safe because the daemon's in-flight dedup makes an
    identical re-sent request idempotent: the repeat either piggybacks
    on the still-running primary build or hits the store. *)

type backoff = {
  b_attempts : int;  (** total attempts, including the first *)
  b_base_s : float;  (** first retry delay *)
  b_cap_s : float;  (** exponential growth cap *)
  b_jitter : float;  (** fraction of the delay randomized away, [0,1] *)
  b_seed : int;  (** jitter seed — equal seeds give equal schedules *)
}

val default_backoff : backoff
(** 5 attempts, 10 ms base, 500 ms cap, 0.5 jitter, seed 7. *)

val backoff_delay : backoff -> int -> float
(** [backoff_delay p attempt] (0-based) — the seconds to sleep before
    retry [attempt + 1]. Pure and deterministic: the jitter is seeded
    by [(b_seed, attempt)], so schedules are reproducible. *)

val rpc_retry :
  ?backoff:backoff ->
  ?telemetry:Pld_telemetry.Telemetry.t ->
  socket:string ->
  Protocol.envelope ->
  (Protocol.reply, string) result
(** {!rpc} with reconnect-and-resend on transport failures (connection
    refused, [EPIPE]/[ECONNRESET], mid-stream EOF) and on transient
    server refusals (replies carrying [retry_after_ms] — shed, drain,
    queue-full), honoring the server's hint when it exceeds the
    backoff delay. Hard application errors return immediately. Every
    retry bumps the [client.retries] counter in [telemetry].

    Each attempt is recorded as an ["rpc.attempt"] wall span (category
    ["client"], with ["attempt"] and — when the envelope carries one —
    ["trace"] attributes) and each retry decision as an ["rpc.retry"]
    instant, so a request's client-side attempts appear in the same
    distributed trace as its server-side queue wait and build
    phases. *)
