(** Seeded crash-recovery harness ([bench chaos]).

    Each scenario injects one failure class and asserts the
    conservation invariants that make the service trustworthy under
    it — no attempt silently dropped, no corrupt read after a kill, a
    scrub finding exactly the damage done:

    - [crash-writer]: SIGKILL a forked store writer mid-[put]; the
      reopened store must scrub clean (atomic writes) and read back
      every surviving entry.
    - [kill-daemon]: SIGKILL a forked daemon (real {!Server} over a
      persistent store) under a compile flood; the stale socket must be
      reclaimed by the connect-probe and the store must recover with
      zero corrupt reads.
    - [corrupt-store]: damage a seeded three of six entries (truncate,
      bit-flip, header garble); the scrub must quarantine exactly
      those three, survivors still reading valid.
    - [conn-storm]: clients sending half a request and vanishing; every
      drop must be counted ([service.conn_errors]), the daemon keeps
      serving, and a dead socket costs exactly attempts-1 retries.
    - [overload]: wedged builds (hang injection) against watchdog,
      queued and mid-build deadlines, and the shed policy — with exact
      expected counter values.

    The in-process scenarios ({!deterministic_names}) produce exact
    counters given a seed — the regression sentinel pins them; the
    forked ones have seeded timing but timing-independent invariants. *)

type check = { ck_name : string; ck_ok : bool; ck_detail : string }

type scenario_report = {
  sr_name : string;
  sr_checks : check list;
  sr_counters : (string * int) list;  (** sorted by name *)
  sr_wall_s : float;
}

type report = { r_seed : int; r_scenarios : scenario_report list }

val scenario_names : string list
(** In execution order (forked scenarios first). *)

val deterministic_names : string list
(** The in-process subset whose counters are exact given a seed. *)

val forked_names : string list
(** The scenarios that [Unix.fork] a child. OCaml 5 forbids forking
    once any domain was ever spawned in the process, so these must run
    before the first {!Service} is created — {!run_seeds} orders this
    automatically, callers embedding scenarios elsewhere must too. *)

val run_seeds :
  ?seeds:int list ->
  ?dir:string ->
  ?only:string list ->
  ?log:(string -> unit) ->
  unit ->
  report list
(** Run [only] (default: all) scenarios for each seed (default [[7]]),
    with scratch stores and sockets under [dir] (default: the system
    temp directory). All forked scenarios run first (across every
    seed), then the domain-creating ones — see {!forked_names}. [log]
    receives one progress line per scenario. Ignores [SIGPIPE] for the
    duration. Raises [Invalid_argument] on an unknown scenario name. *)

val run :
  ?seed:int -> ?dir:string -> ?only:string list -> ?log:(string -> unit) -> unit -> report
(** [run_seeds ~seeds:[seed]] for a single seed (default 7). *)

val ok : report -> bool
val scenario_ok : scenario_report -> bool

val counters : report -> (string * int) list
(** All scenario counters, name-spaced ["<scenario>.<counter>"]. *)

val report_json : report -> Pld_telemetry.Json.t
val render : report -> string list
