(** Wire protocol of the [pldd] daemon: newline-delimited JSON.

    Each request is one JSON object on one line; the daemon answers
    with one JSON object on one line. Graphs travel by {e name} — the
    daemon resolves a bench name (a Rosetta benchmark or a synthetic
    [svc-...] traffic chain) to a graph, so the protocol layer stays
    independent of the benchmark suites. *)

type request =
  | Ping
  | Compile of { bench : string; level : string }
      (** [level] is a {!Pld_core.Build.level_name}: ["O0"], ["O1"],
          ["O3"] or ["Vitis"]. *)
  | Run of { bench : string; level : string; frames : int }
      (** Compile, link and execute with [frames] ramp words on every
          graph input. *)
  | Profile of { bench : string; level : string }
      (** Fetch the persisted fabric profile of a build (see
          {!Pld_core.Fabric_profile}): the windowed PMU series, stall
          splits and link traffic of the run that produced the cached
          artifact. Keyed like the build itself, so any tenant hitting
          the shared artifact gets the primary's profile — trace id and
          tenant of the producing run ride inside the document. *)
  | Stats
  | Status
      (** Live introspection: queue depth, per-tenant quota occupancy,
          in-flight build ages, rejection counters, and per-tenant
          latency quantiles derived from bucket counts. *)
  | Metrics
      (** The metrics registry, both as JSON and as a Prometheus text
          exposition; also flushes the daemon's [--metrics-out]
          snapshot on demand. *)
  | Health  (** Cheap liveness probe: ok/state/uptime. *)
  | Shutdown

type envelope = {
  rq_id : int;
  tenant : string;
  priority : int;
  deadline_ms : int option;
      (** Time budget for the whole request, measured from admission:
          the daemon expires the job (queued or mid-build, at the next
          tool-phase boundary) once the budget is spent. [None] means
          no deadline. *)
  trace : string option;
      (** Request trace id, minted client-side
          ({!Pld_telemetry.Log.mint_trace_id}) and stamped on every
          span the request produces on both sides of the wire — the
          key that stitches client RPC attempts, queue wait, and build
          phases into one distributed trace. *)
  req : request;
}

val envelope :
  ?id:int ->
  ?tenant:string ->
  ?priority:int ->
  ?deadline_ms:int ->
  ?trace:string ->
  request ->
  envelope
(** [id] defaults to 0, [tenant] to ["default"], [priority] to 0,
    [deadline_ms] and [trace] to none. *)

val envelope_to_json : envelope -> Pld_telemetry.Json.t
val envelope_of_json : Pld_telemetry.Json.t -> (envelope, string) result

type reply = { rp_id : int; ok : bool; body : Pld_telemetry.Json.t }
(** On failure [body] is [Obj [("error", String msg)]]. *)

val reply_ok : id:int -> Pld_telemetry.Json.t -> reply
val reply_error : id:int -> string -> reply

val reply_busy : id:int -> ?retry_after_ms:int -> state:string -> string -> reply
(** A transient refusal: [state] names the server condition ([SHED],
    [DRAINING], [QUEUE_FULL]) and [retry_after_ms] hints when the same
    request is likely to be admitted. {!Client.rpc_retry} backs off
    and retries these; hard errors (unknown bench, build failure) it
    does not. *)

val reply_to_json : reply -> Pld_telemetry.Json.t
val reply_of_json : Pld_telemetry.Json.t -> (reply, string) result

val error_message : reply -> string option
(** The [error] field of a failed reply's body. *)

val retry_after_ms : reply -> int option
(** The [retry_after_ms] hint of a {!reply_busy} refusal, if any. *)

val reply_state : reply -> string option
(** The [state] tag of a {!reply_busy} refusal, if any. *)

val render_status : Pld_telemetry.Json.t -> string list
(** Human rendering of a [Status] reply body: a header line (uptime,
    state, queue occupancy), a counters line, one line per tenant
    (quota occupancy and latency quantiles), and one line per in-flight
    build (age and trace id). Used by [pldc status] and [pldc top]. *)

val level_of_name : string -> (Pld_core.Build.level, string) result
