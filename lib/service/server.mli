(** The daemon's serving loop, shared between [bin/pldd] and the chaos
    harness: a Unix-domain-socket accept loop (one thread per
    connection) in front of a {!Service.t}, with safe socket claiming,
    graceful drain on stop, and per-connection error accounting.

    Robustness contracts:

    - Startup {e probes} an existing socket file with a connect before
      touching it. A live daemon answering the probe is a hard error; a
      refused connection marks the socket stale (crashed daemon) and it
      is unlinked; a non-socket file at the path is refused outright.
    - Connection-level transport failures (a client gone mid-reply,
      [EPIPE], reset) bump the [service.conn_errors] counter and emit
      one structured log line each — they are never silently swallowed.
    - {!stop} (also installed on [SIGTERM]/[SIGINT]) closes the
      listener, drains the service under its grace budget — during
      which new submissions are refused with honest [DRAINING] replies —
      then joins the connection threads and removes the socket. *)

type t

val service : t -> Service.t

val stop : t -> unit
(** Begin shutdown: close the listener and let {!serve} fall into its
    drain phase. Safe from a signal handler; idempotent. *)

val draining : t -> bool
(** True once {!stop} was called or the underlying service is
    draining. *)

val reply_of_reject : id:int -> Service.reject -> Protocol.reply
(** Map a structured service refusal onto the wire: [ok = false] with
    [state] ({!Service.reject_state}) and, for the transient classes, a
    [retry_after_ms] hint {!Client.rpc_retry} honors. *)

val flush_metrics : t -> bool
(** Write the telemetry metrics snapshot to the server's
    [metrics_out] path (atomic tmp + rename). [false] when no path is
    configured or the write failed (logged, never raised). *)

val handle : t -> resolve:(string -> (Pld_ir.Graph.t, string) result) -> Protocol.envelope -> Protocol.reply
(** Default request semantics: [Ping] (reports draining), [Stats],
    [Shutdown] (calls {!stop}), and [Compile] — resolving the benchmark
    name via [resolve] and forwarding the envelope's tenant, priority
    and [deadline_ms] to {!Service.compile}. [Run] answers with an
    error; embedders that support it wrap this function.

    Admin verbs: [Status] answers {!Service.status_json}, [Health]
    {!Service.health_json}, and [Metrics] the registry both ways — a
    ["prometheus"] text exposition ({!Pld_telemetry.Telemetry.to_prometheus})
    and a ["metrics"] JSON document — plus a ["flushed"] flag after an
    on-demand {!flush_metrics}. *)

val claim_socket : string -> (unit, string) result
(** The startup probe described above, exposed for tests: ensure [path]
    is free to bind, unlinking only a provably-stale socket. *)

val serve :
  socket:string ->
  ?backlog:int ->
  ?drain_grace_s:float ->
  ?install_signals:bool ->
  ?telemetry:Pld_telemetry.Telemetry.t ->
  ?logger:Pld_telemetry.Log.t ->
  ?metrics_out:string ->
  ?metrics_interval_s:float ->
  ?on_listen:(unit -> unit) ->
  service:Service.t ->
  handler:(t -> Protocol.envelope -> Protocol.reply) ->
  unit ->
  (unit, string) result
(** Claim the socket, bind, and serve until {!stop}; returns after the
    drain completes (the service is shut down and the socket removed).
    [Error] means the socket could not be claimed. [drain_grace_s]
    (default 5 s) bounds how long in-flight builds may finish after
    {!stop}; [install_signals] (default true) wires
    [SIGTERM]/[SIGINT] to {!stop} and ignores [SIGPIPE]; [on_listen]
    fires once the socket is accepting (the daemon's readiness
    line).

    [logger] (default {!Pld_telemetry.Log.default}) receives the
    server's structured events (listening/draining at [Info],
    connection transport errors at [Warn]). With [metrics_out], the
    telemetry metrics snapshot is written there atomically every
    [metrics_interval_s] (default 5 s), on every [Metrics] request,
    and once more at shutdown — so even a [SIGKILL]'d daemon leaves a
    snapshot no older than one interval. *)
