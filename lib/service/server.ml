(* The daemon's serving loop, extracted from bin/pldd so a chaos
   harness (or a test) can run the very same socket server in a forked
   child. One thread per connection; requests flow into the
   multi-tenant Service queue; structured rejections map onto wire
   states the retrying client understands. *)

module T = Pld_telemetry.Telemetry
module Json = Pld_telemetry.Json
module Log = Pld_telemetry.Log

type t = {
  sv_socket : string;
  sv_listen : Unix.file_descr;
  sv_service : Service.t;
  sv_telemetry : T.t;
  sv_grace_s : float;
  sv_logger : Log.t;
  sv_metrics_out : string option;
  sv_stopping : bool Atomic.t;
}

let service t = t.sv_service

(* Atomic tmp + rename, so a scraper (or a post-crash reader) never
   sees a torn snapshot; failures are logged, never raised — metrics
   persistence must not take the daemon down. *)
let flush_metrics t =
  match t.sv_metrics_out with
  | None -> false
  | Some file -> (
      try
        let tmp = file ^ ".tmp" in
        Json.write_file ~file:tmp (T.to_metrics_json t.sv_telemetry);
        Sys.rename tmp file;
        true
      with Sys_error msg | Unix.Unix_error (_, msg, _) ->
        Log.warn t.sv_logger ~fields:[ ("file", file) ] ~sub:"server.metrics"
          (Printf.sprintf "snapshot failed: %s" msg);
        false)

let stop t =
  if not (Atomic.exchange t.sv_stopping true) then
    (* Closing the listener pops the accept loop out of its wait. *)
    try Unix.shutdown t.sv_listen Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let draining t = Atomic.get t.sv_stopping || Service.draining t.sv_service

let reply_of_reject ~id rej =
  let state = Service.reject_state rej and msg = Service.reject_message rej in
  match Service.reject_retry_after_ms rej with
  | Some ms -> Protocol.reply_busy ~id ~retry_after_ms:ms ~state msg
  | None -> Protocol.reply_busy ~id ~state msg

(* Everything except Run (which needs a card and a workload — the
   embedder's business): ping, stats, shutdown, and deadline-carrying
   compile against [resolve]d graphs. *)
let handle t ~resolve (e : Protocol.envelope) =
  let id = e.Protocol.rq_id in
  match e.Protocol.req with
  | Protocol.Ping ->
      Protocol.reply_ok ~id
        (Json.Obj [ ("pong", Json.Bool true); ("draining", Json.Bool (draining t)) ])
  | Protocol.Stats -> Protocol.reply_ok ~id (Service.stats_json (Service.stats t.sv_service))
  | Protocol.Status -> Protocol.reply_ok ~id (Service.status_json t.sv_service)
  | Protocol.Health -> Protocol.reply_ok ~id (Service.health_json t.sv_service)
  | Protocol.Metrics ->
      (* On-demand flush: a scraper asking for metrics also refreshes
         the on-disk snapshot, so [--metrics-out] is never stale. *)
      let flushed = flush_metrics t in
      Protocol.reply_ok ~id
        (Json.Obj
           [
             ("prometheus", Json.String (T.to_prometheus t.sv_telemetry));
             ("metrics", T.to_metrics_json t.sv_telemetry);
             ("flushed", Json.Bool flushed);
           ])
  | Protocol.Shutdown ->
      stop t;
      Protocol.reply_ok ~id (Json.Obj [ ("stopping", Json.Bool true) ])
  | Protocol.Run _ -> Protocol.reply_error ~id "run is not supported by this server"
  | Protocol.Profile { bench; level } -> (
      match (resolve bench, Protocol.level_of_name level) with
      | Error msg, _ | _, Error msg -> Protocol.reply_error ~id msg
      | Ok g, Ok level ->
          (* The profile rides the build's own cache key, so a tenant
             whose compile dedup'd onto another's build reads the
             primary run's profile here. *)
          let body =
            match Service.find_profile t.sv_service g level with
            | Some doc -> [ ("found", Json.Bool true); ("profile", doc) ]
            | None -> [ ("found", Json.Bool false); ("profile", Json.Null) ]
          in
          let body =
            match e.Protocol.trace with
            | Some tr -> body @ [ ("trace", Json.String tr) ]
            | None -> body
          in
          Protocol.reply_ok ~id (Json.Obj body))
  | Protocol.Compile { bench; level } -> (
      match (resolve bench, Protocol.level_of_name level) with
      | Error msg, _ | _, Error msg -> Protocol.reply_error ~id msg
      | Ok g, Ok level -> (
          match
            Service.compile t.sv_service ~tenant:e.Protocol.tenant ~priority:e.Protocol.priority
              ?deadline_ms:e.Protocol.deadline_ms ?trace_id:e.Protocol.trace ~level g
          with
          | Ok outcome -> Protocol.reply_ok ~id (Service.outcome_json outcome)
          | Error rej -> reply_of_reject ~id rej))

(* Per-connection loop. Transport failures (a client that vanished
   mid-reply, EPIPE on a closed pipe) are counted and logged — one
   structured line each — instead of silently swallowed. *)
let handle_conn t handler ~conn_id fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send reply =
    output_string oc (Json.to_string (Protocol.reply_to_json reply));
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        (match Json.of_string line with
        | exception Json.Parse_error msg -> send (Protocol.reply_error ~id:0 ("bad request: " ^ msg))
        | j -> (
            match Protocol.envelope_of_json j with
            | Error msg -> send (Protocol.reply_error ~id:0 msg)
            | Ok envelope -> send (handler t envelope)));
        loop ()
  in
  let conn_error op msg =
    T.incr (T.counter t.sv_telemetry "service.conn_errors");
    Log.warn t.sv_logger
      ~fields:[ ("conn", string_of_int conn_id); ("op", op) ]
      ~sub:"server.conn"
      (Printf.sprintf "transport error: %s" msg)
  in
  (try loop () with
  | Sys_error msg -> conn_error "io" msg
  | Unix.Unix_error (err, fn, _) -> conn_error fn (Unix.error_message err));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Starting up must never clobber a live daemon: probe the existing
   socket with a connect first. An answering peer is a hard error; a
   refused connection is a stale socket from a crashed daemon and safe
   to unlink; a non-socket file is someone else's and refused too. *)
let claim_socket path =
  if not (Sys.file_exists path) then Ok ()
  else
    match (Unix.lstat path).Unix.st_kind with
    | exception Unix.Unix_error (err, _, _) ->
        Error (Printf.sprintf "cannot stat %s: %s" path (Unix.error_message err))
    | Unix.S_SOCK -> (
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Error (Printf.sprintf "a daemon is already listening on %s" path)
        | exception Unix.Unix_error _ -> (
            (try Unix.close fd with Unix.Unix_error _ -> ());
            (* Nothing answered: stale socket, reclaim it. *)
            match Unix.unlink path with
            | () -> Ok ()
            | exception Unix.Unix_error (err, _, _) ->
                Error
                  (Printf.sprintf "cannot remove stale socket %s: %s" path
                     (Unix.error_message err))))
    | _ ->
        Error (Printf.sprintf "refusing to remove %s: exists and is not a socket" path)

let serve ~socket ?(backlog = 64) ?(drain_grace_s = 5.0) ?(install_signals = true)
    ?(telemetry = T.default) ?(logger = Log.default) ?metrics_out ?(metrics_interval_s = 5.0)
    ?on_listen ~service:svc ~handler () =
  match claim_socket socket with
  | Error _ as e -> e
  | Ok () ->
      let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (match Unix.bind listen_fd (Unix.ADDR_UNIX socket) with
      | () -> ()
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          raise
            (Sys_error (Printf.sprintf "bind %s: %s" socket (Unix.error_message err))));
      Unix.listen listen_fd backlog;
      let t =
        {
          sv_socket = socket;
          sv_listen = listen_fd;
          sv_service = svc;
          sv_telemetry = telemetry;
          sv_grace_s = drain_grace_s;
          sv_logger = logger;
          sv_metrics_out = metrics_out;
          sv_stopping = Atomic.make false;
        }
      in
      if install_signals then begin
        Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop t));
        Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop t));
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore
      end;
      (* Periodic snapshot tick: a SIGKILL'd daemon still leaves a
         recent metrics file. Sleeps in short slices so shutdown is not
         held hostage to the interval. *)
      let snapshot_thread =
        Option.map
          (fun _ ->
            Thread.create
              (fun () ->
                let slice = 0.05 in
                let rec loop slept =
                  if not (Atomic.get t.sv_stopping) then begin
                    Thread.delay slice;
                    let slept = slept +. slice in
                    if slept >= metrics_interval_s then begin
                      ignore (flush_metrics t);
                      loop 0.0
                    end
                    else loop slept
                  end
                in
                loop 0.0)
              ())
          metrics_out
      in
      Option.iter (fun f -> f ()) on_listen;
      Log.info logger ~fields:[ ("socket", socket) ] ~sub:"server" "listening";
      let threads = ref [] in
      let conns = ref 0 in
      (try
         while not (Atomic.get t.sv_stopping) do
           let fd, _ = Unix.accept listen_fd in
           if Atomic.get t.sv_stopping then Unix.close fd
           else begin
             incr conns;
             let conn_id = !conns in
             threads := Thread.create (handle_conn t handler ~conn_id) fd :: !threads
           end
         done
       with Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED | Unix.EINTR), _, _) ->
         ());
      (* Graceful drain: no new connections (listener is down), new
         submissions refused as DRAINING, in-flight work gets the grace
         budget to finish, then the service stops. *)
      Log.info logger
        ~fields:[ ("grace_s", Printf.sprintf "%.1f" t.sv_grace_s) ]
        ~sub:"server" "draining";
      Service.drain ~grace_s:t.sv_grace_s t.sv_service;
      List.iter Thread.join !threads;
      Option.iter Thread.join snapshot_thread;
      ignore (flush_metrics t);
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      if Sys.file_exists socket then (try Unix.unlink socket with Unix.Unix_error _ -> ());
      Ok ()
