(** Synthetic multi-tenant traffic: the workload behind [bench service]
    and the service tier of the regression sentinel.

    Sessions draw operator chains from a fixed pool with Zipf-
    distributed popularity — a few operators are requested constantly,
    a long tail rarely — which is exactly the regime where a shared
    store pays: the hot head is compiled once and then served to every
    tenant from cache (or deduplicated in flight). Everything is
    seeded, so a (seed, options) pair names one reproducible trace. *)

open Pld_ir

type options = {
  sessions : int;  (** compile requests to issue *)
  tenants : int;  (** round-robin over [t0..t<n-1>] *)
  zipf : float;  (** skew exponent s; weight of rank r is 1/(r+1)^s *)
  pool : int;  (** distinct operators *)
  max_chain : int;  (** ops per session graph, uniform in 1..max_chain *)
  level : Pld_core.Build.level;
  seed : int;
}

val default_options : options
(** 200 sessions, 4 tenants, zipf 1.1, pool 24, chains up to 3, O1,
    seed 11. *)

val pool_op : int -> Op.t
(** The [i]-th pool operator ([svc<i>]) — source text varies with [i],
    so distinct indices never collide in the cache. *)

val chain_graph : int list -> Graph.t
(** The session graph for a chain of pool indices; equal chains yield
    byte-identical graphs (same name, same sources) and therefore the
    same service dedup key. *)

val chain_tokens : int list -> int
(** Input tokens for one frame through the chain. Pool operators are
    rate-uniform — every body execution consumes and produces the same
    token count — because the linked runner executes each body exactly
    once per frame; mixed rates would deadlock. *)

val chain_workload : int list -> (string * Value.t list) list
(** A ramp of {!chain_tokens} words on ["cin"] — the canonical runnable
    workload for {!chain_graph}. *)

val chain_name : int list -> string
(** The graph name [chain_graph] would use, e.g. ["svc-3x0x7"] — what
    a remote client sends the daemon to request the same build. *)

val chain_of_name : string -> (int list, string) result
(** Parse a [chain_name] back (the daemon's resolver). *)

val sample_chain : Pld_util.Rng.t -> options -> int list

type summary = {
  sm_options : options;
  sm_wall_seconds : float;
  sm_completed : int;
  sm_failed : int;
  sm_backpressure : int;  (** admissions that had to retry after a rejection *)
  sm_deduped : int;
  sm_cross_hits : int;
  sm_distinct_graphs : int;
  sm_cache_hits : int;  (** summed over compiled (non-deduped) sessions *)
  sm_recompiled : int;
  sm_store_writes : int;
  sm_p50 : float;
  sm_p95 : float;
  sm_p99 : float;
  sm_mean : float;
  sm_max : float;
  sm_per_tenant : (string * int) list;  (** completed jobs per tenant *)
  sm_cross_rate : float;  (** cross-tenant hits / completed *)
}

val run : service:Service.t -> options -> summary
(** Drive [options.sessions] requests through the service and await
    them all. Admission rejections are retried after draining one
    outstanding ticket (counted in [sm_backpressure]), so every session
    eventually completes unless its build fails. *)

val summary_json : summary -> Pld_telemetry.Json.t
val render : summary -> string list
