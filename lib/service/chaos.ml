(* Seeded crash-recovery harness: each scenario injects one class of
   failure — a SIGKILLed store writer, seeded on-disk corruption,
   clients vanishing mid-request, an overload flood with wedged
   builds — and asserts the conservation invariants that make the
   service trustworthy under it: no request is silently dropped (every
   attempt ends as completed, failed, shed, deadline-exceeded, lost or
   rejected), a kill mid-write never yields a corrupt read, and a
   scrub finds exactly the entries that were damaged.

   Scenarios are deterministic given a seed wherever the OS allows:
   the in-process ones (overload, corrupt-store, conn-storm) produce
   exact counter values the regression sentinel pins; the forked ones
   (crash-writer, kill-daemon) have seeded timing but assert
   timing-independent invariants. *)

module T = Pld_telemetry.Telemetry
module Json = Pld_telemetry.Json
module Rng = Pld_util.Rng
module Digest_lite = Pld_util.Digest_lite
module Store = Pld_engine.Store
module Fault = Pld_faults.Fault

type check = { ck_name : string; ck_ok : bool; ck_detail : string }

type scenario_report = {
  sr_name : string;
  sr_checks : check list;
  sr_counters : (string * int) list;  (** sorted by name *)
  sr_wall_s : float;
}

type report = { r_seed : int; r_scenarios : scenario_report list }

let scenario_ok s = List.for_all (fun c -> c.ck_ok) s.sr_checks
let ok r = List.for_all scenario_ok r.r_scenarios

let counters r =
  List.concat_map
    (fun s -> List.map (fun (k, v) -> (s.sr_name ^ "." ^ k, v)) s.sr_counters)
    r.r_scenarios

(* ---------- plumbing ---------- *)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fresh_dir ~root ~seed name =
  let base = match root with Some d -> d | None -> Filename.get_temp_dir_name () in
  let d = Filename.concat base (Printf.sprintf "pld-chaos-%d-%d-%s" (Unix.getpid ()) seed name) in
  rm_rf d;
  mkdir_p d;
  d

let wait_until ?(timeout_s = 10.0) f =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if f () then true
    else if Unix.gettimeofday () -. t0 > timeout_s then false
    else begin
      Thread.yield ();
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

(* Per-scenario check accumulator. *)
type ledger = { mutable checks : check list }

let push lg name ok detail = lg.checks <- { ck_name = name; ck_ok = ok; ck_detail = detail } :: lg.checks

let pushb lg name ok = push lg name ok (if ok then "" else "violated")

let finish ~name ~t0 ~counters lg =
  {
    sr_name = name;
    sr_checks = List.rev lg.checks;
    sr_counters = List.sort compare counters;
    sr_wall_s = Unix.gettimeofday () -. t0;
  }

let chain_resolve name =
  match Traffic.chain_of_name name with
  | Ok chain -> Ok (Traffic.chain_graph chain)
  | Error _ as e -> e

(* Every surviving entry must deserialize — "zero corrupt reads". The
   payload type is irrelevant; validation happens before unmarshal. *)
let readable_entries st =
  List.for_all
    (fun (kind, key) ->
      match (Store.find st ~kind ~key : Obj.t option) with Some _ -> true | None -> false)
    (Store.entries st)

(* ---------- crash-writer: SIGKILL a store writer mid-put ---------- *)

(* A forked child hammers [Store.put]; the parent kills it at a seeded
   moment and then audits the store. Atomic temp-file+rename writes are
   exactly what makes this survivable: however ill-timed the kill, a
   reopened store must scrub clean and read back every entry. *)
let scenario_crash_writer ~seed ~root _log =
  let t0 = Unix.gettimeofday () in
  let lg = { checks = [] } in
  let dir = fresh_dir ~root ~seed "crash-writer" in
  let rng = Rng.create ((seed * 7919) + 1) in
  let r, w = Unix.pipe () in
  (match Unix.fork () with
  | 0 ->
      (try
         Unix.close r;
         let st = Store.open_ ~dir () in
         let payload i = List.init 512 (fun k -> ((k * i) + seed) land 0xffff) in
         Store.put st ~kind:"chaos" ~key:(Digest_lite.of_string "w0") (payload 0);
         (* One entry is durable; tell the parent the hammering began. *)
         ignore (Unix.write_substring w "r" 0 1);
         let i = ref 0 in
         while true do
           incr i;
           Store.put st ~kind:"chaos"
             ~key:(Digest_lite.of_string (Printf.sprintf "w%d" !i))
             (payload !i)
         done
       with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close w;
      let ready = Bytes.create 1 in
      ignore (Unix.read r ready 0 1);
      Unix.close r;
      Unix.sleepf (0.01 +. Rng.float rng 0.05);
      Unix.kill pid Sys.sigkill;
      let _, status = Unix.waitpid [] pid in
      pushb lg "writer died by SIGKILL" (status = Unix.WSIGNALED Sys.sigkill));
  let tele = T.create () in
  let st = Store.open_ ~quarantine:true ~telemetry:tele ~dir () in
  let rep = Store.scrub st in
  push lg "writer made progress before the kill"
    (Store.count st >= 1)
    (Printf.sprintf "%d entries survived" (Store.count st));
  push lg "kill mid-write left no torn entries"
    (rep.Store.sc_quarantined = 0)
    (Store.render_scrub rep);
  pushb lg "zero corrupt reads after restart" (readable_entries st);
  let counters =
    [
      ("entries", Store.count st);
      ("quarantined", T.counter_value tele "store.quarantined");
    ]
  in
  finish ~name:"crash-writer" ~t0 ~counters lg

(* ---------- corrupt-store: seeded damage, exact scrub ---------- *)

(* Write six entries, damage a seeded three of them three different
   ways (truncation, payload bit-flip, header garble), and require the
   scrub to quarantine exactly those three — survivors still read,
   victims read as clean misses, and the torn bytes are preserved in
   store.quarantine/ for post-mortem. *)
let scenario_corrupt_store ~seed ~root _log =
  let t0 = Unix.gettimeofday () in
  let lg = { checks = [] } in
  let dir = fresh_dir ~root ~seed "corrupt-store" in
  let rng = Rng.create ((seed * 7919) + 2) in
  let key i = Digest_lite.of_string (Printf.sprintf "entry-%d" i) in
  let payload i = List.init 256 (fun k -> ((k * (i + 3)) + seed) land 0xffff) in
  let writer = Store.open_ ~dir () in
  for i = 0 to 5 do
    Store.put writer ~kind:"chaos" ~key:(key i) (payload i)
  done;
  let idx = [| 0; 1; 2; 3; 4; 5 |] in
  Rng.shuffle rng idx;
  let victims = [ idx.(0); idx.(1); idx.(2) ] in
  let entry_file i = Filename.concat dir (Printf.sprintf "chaos-%s.art" (key i)) in
  let damage n i =
    let file = entry_file i in
    match n with
    | 0 ->
        (* Torn write: lose the tail. *)
        let len = (Unix.stat file).Unix.st_size in
        let fd = Unix.openfile file [ Unix.O_WRONLY ] 0 in
        Unix.ftruncate fd (len / 2);
        Unix.close fd
    | 1 ->
        (* Bit rot: flip one payload bit at the end of the file. *)
        let ic = open_in_bin file in
        let len = in_channel_length ic in
        let buf = really_input_string ic len in
        close_in ic;
        let b = Bytes.of_string buf in
        Bytes.set b (len - 1) (Char.chr (Char.code (Bytes.get b (len - 1)) lxor 0x40));
        let oc = open_out_bin file in
        output_bytes oc b;
        close_out oc
    | _ ->
        (* Garbled header: wrong magic. *)
        let fd = Unix.openfile file [ Unix.O_WRONLY ] 0 in
        ignore (Unix.write_substring fd "XXX" 0 3);
        Unix.close fd
  in
  List.iteri damage victims;
  let tele = T.create () in
  let st = Store.open_ ~quarantine:true ~telemetry:tele ~dir () in
  let rep = Store.scrub st in
  ignore rep;
  let quarantined = T.counter_value tele "store.quarantined" in
  push lg "scrub quarantined exactly the damaged entries" (quarantined = 3)
    (Printf.sprintf "%d quarantined (expected 3)" quarantined);
  let survivors = List.filter (fun i -> not (List.mem i victims)) [ 0; 1; 2; 3; 4; 5 ] in
  pushb lg "undamaged entries still read valid"
    (List.for_all
       (fun i ->
         match (Store.find st ~kind:"chaos" ~key:(key i) : int list option) with
         | Some p -> p = payload i
         | None -> false)
       survivors);
  pushb lg "damaged entries read as clean misses"
    (List.for_all
       (fun i -> (Store.find st ~kind:"chaos" ~key:(key i) : int list option) = None)
       victims);
  push lg "live store holds only the survivors" (Store.count st = 3)
    (Printf.sprintf "%d entries" (Store.count st));
  let evidence =
    match Sys.readdir (Store.quarantine_dir st) with
    | files -> Array.length files
    | exception Sys_error _ -> 0
  in
  push lg "torn bytes preserved for post-mortem" (evidence = 3)
    (Printf.sprintf "%d files in %s" evidence (Store.quarantine_dir st));
  finish ~name:"corrupt-store" ~t0 ~counters:[ ("quarantined", quarantined); ("survivors", Store.count st) ] lg

(* ---------- conn-storm: clients vanishing mid-request ---------- *)

(* An in-process Server (own thread, private socket) is stormed by
   clients that send half a request and hang up. Each drop must be
   counted — never silently swallowed — and the daemon must keep
   serving afterwards. Also pins the retry machinery: a dead socket
   costs exactly attempts-1 seeded-backoff retries. *)
let scenario_conn_storm ~seed ~root _log =
  let t0 = Unix.gettimeofday () in
  let lg = { checks = [] } in
  let dir = fresh_dir ~root ~seed "conn-storm" in
  let socket = Filename.concat dir "pldd.sock" in
  let tele = T.create () in
  let svc = Service.create ~queue_workers:1 ~telemetry:tele () in
  let ready = Atomic.make false in
  let server =
    Thread.create
      (fun () ->
        ignore
          (Server.serve ~socket ~install_signals:false ~telemetry:tele
             ~logger:(Pld_telemetry.Log.create ())
             ~on_listen:(fun () -> Atomic.set ready true)
             ~service:svc
             ~handler:(fun t e -> Server.handle t ~resolve:chain_resolve e)
             ()))
      ()
  in
  pushb lg "server came up" (wait_until (fun () -> Atomic.get ready));
  pushb lg "claim_socket refuses a live daemon"
    (match Server.claim_socket socket with Error _ -> true | Ok () -> false);
  let drops = 3 in
  for _ = 1 to drops do
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    (* Half a request, then vanish: the server's error reply hits a
       closed peer (EPIPE) and must be accounted, not swallowed. *)
    ignore (Unix.write_substring fd "{\"half\":" 0 8);
    Unix.close fd
  done;
  pushb lg "every dropped connection was counted"
    (wait_until (fun () -> T.counter_value tele "service.conn_errors" >= drops));
  let ping () =
    match Client.rpc ~socket (Protocol.envelope Protocol.Ping) with
    | Ok r -> r.Protocol.ok
    | Error _ -> false
  in
  pushb lg "daemon still serves after the storm" (ping ());
  (let e =
     Protocol.envelope ~tenant:"chaos" (Protocol.Compile { bench = "svc-1x2"; level = "O1" })
   in
   match Client.rpc_retry ~telemetry:tele ~socket e with
   | Ok r -> pushb lg "compile via retrying client succeeds" r.Protocol.ok
   | Error msg -> push lg "compile via retrying client succeeds" false msg);
  let backoff =
    { Client.default_backoff with Client.b_attempts = 3; b_base_s = 0.001; b_cap_s = 0.002; b_seed = seed }
  in
  (match
     Client.rpc_retry ~backoff ~telemetry:tele ~socket:(Filename.concat dir "nope.sock")
       (Protocol.envelope Protocol.Ping)
   with
  | Error _ -> pushb lg "dead socket fails after the retry budget" true
  | Ok _ -> pushb lg "dead socket fails after the retry budget" false);
  let retries = T.counter_value tele "client.retries" in
  push lg "retry count is exactly attempts-1" (retries = backoff.Client.b_attempts - 1)
    (Printf.sprintf "%d retries (expected %d)" retries (backoff.Client.b_attempts - 1));
  (match Client.rpc ~socket (Protocol.envelope Protocol.Shutdown) with
  | Ok r -> pushb lg "shutdown acknowledged" r.Protocol.ok
  | Error msg -> push lg "shutdown acknowledged" false msg);
  Thread.join server;
  pushb lg "drained server removed its socket" (not (Sys.file_exists socket));
  let counters =
    [
      ("conn_errors", T.counter_value tele "service.conn_errors");
      ("client_retries", retries);
    ]
  in
  finish ~name:"conn-storm" ~t0 ~counters lg

(* ---------- overload: flood, deadlines, watchdog, shedding ---------- *)

(* Four small services, one per failure mode, sharing a telemetry sink
   so the counters the sentinel pins accumulate in one place. Every
   sub-scenario is exact: the hang injector wedges a named graph for a
   known time, deadlines and budgets are chosen so outcomes cannot
   race. *)
let scenario_overload ~seed ~root:_ _log =
  let t0 = Unix.gettimeofday () in
  let lg = { checks = [] } in
  let tele = T.create () in
  let chain = Traffic.chain_graph in
  let conserve name st =
    let open Service in
    let accounted =
      st.st_completed + st.st_failed + st.st_deadline_exceeded + st.st_lost + st.st_queue_depth
      + st.st_in_flight
    in
    push lg
      (name ^ ": every admitted request is accounted for")
      (st.st_submitted = accounted)
      (Printf.sprintf "submitted %d, accounted %d" st.st_submitted accounted)
  in
  (* a. A wedged build trips the watchdog: the job is written off as
     Lost and a replacement worker keeps the pool serving. *)
  let fa = Fault.create ~seed (Fault.parse_exn "hang=svc-9@500") in
  let svc = Service.create ~queue_workers:1 ~watchdog_timeout_s:0.12 ~watchdog_tick_s:0.01 ~faults:fa ~telemetry:tele () in
  (match Service.compile svc ~tenant:"chaos" (chain [ 9 ]) with
  | Error (Service.Lost _) -> pushb lg "watchdog writes off the wedged build" true
  | Ok _ -> push lg "watchdog writes off the wedged build" false "completed instead"
  | Error rej -> push lg "watchdog writes off the wedged build" false (Service.reject_message rej));
  (match Service.compile svc ~tenant:"chaos" (chain [ 1 ]) with
  | Ok _ -> pushb lg "replacement worker serves after the kill" true
  | Error rej -> push lg "replacement worker serves after the kill" false (Service.reject_message rej));
  let sta = Service.stats svc in
  push lg "exactly one watchdog kill" (sta.Service.st_watchdog_kills = 1)
    (Printf.sprintf "%d kills" sta.Service.st_watchdog_kills);
  conserve "watchdog" sta;
  Service.shutdown svc;
  (* b. Queued deadlines: a wedged primary blocks the single worker;
     everything queued behind it with a 50 ms budget expires from the
     queue, the blocker itself still completes. *)
  let fb = Fault.create ~seed (Fault.parse_exn "hang=svc-8@300") in
  let svc = Service.create ~queue_workers:1 ~watchdog_tick_s:0.01 ~faults:fb ~telemetry:tele () in
  let blocker =
    match Service.submit svc ~tenant:"chaos" (chain [ 8 ]) with
    | Ok tk -> Some tk
    | Error _ -> None
  in
  pushb lg "blocker admitted" (blocker <> None);
  ignore
    (wait_until (fun () -> (Service.stats svc).Service.st_in_flight = 1));
  let doomed =
    List.filter_map
      (fun i ->
        match Service.submit svc ~tenant:"chaos" ~deadline_ms:50 (chain [ i ]) with
        | Ok tk -> Some tk
        | Error _ -> None)
      [ 0; 1; 2 ]
  in
  push lg "flood admitted behind the blocker" (List.length doomed = 3)
    (Printf.sprintf "%d admitted" (List.length doomed));
  let expired_queued =
    List.for_all
      (fun tk ->
        match Service.await svc tk with
        | Error (Service.Deadline_exceeded { stage = "queued"; _ }) -> true
        | _ -> false)
      doomed
  in
  pushb lg "queued jobs expired by their deadline, oldest first" expired_queued;
  (match blocker with
  | Some tk -> (
      match Service.await svc tk with
      | Ok _ -> pushb lg "blocker still completed" true
      | Error rej -> push lg "blocker still completed" false (Service.reject_message rej))
  | None -> ());
  let stb = Service.stats svc in
  push lg "three queued deadline expiries" (stb.Service.st_deadline_exceeded = 3)
    (Printf.sprintf "%d expired" stb.Service.st_deadline_exceeded);
  conserve "queued-deadline" stb;
  Service.shutdown svc;
  (* c. Mid-build deadline: the build starts before its 80 ms budget
     runs out but wedges for 250 ms; expiry fires at the next
     tool-phase boundary. *)
  let fc = Fault.create ~seed (Fault.parse_exn "hang=svc-7@250") in
  let svc = Service.create ~queue_workers:1 ~watchdog_tick_s:0.01 ~faults:fc ~telemetry:tele () in
  (match Service.compile svc ~tenant:"chaos" ~deadline_ms:80 (chain [ 7 ]) with
  | Error (Service.Deadline_exceeded { stage = "build"; _ }) ->
      pushb lg "mid-build deadline fires at a tool-phase boundary" true
  | Ok _ -> push lg "mid-build deadline fires at a tool-phase boundary" false "completed instead"
  | Error rej ->
      push lg "mid-build deadline fires at a tool-phase boundary" false (Service.reject_message rej));
  conserve "build-deadline" (Service.stats svc);
  Service.shutdown svc;
  (* d. Shedding: with a 1 s assumed build and a 0.2 s budget, any
     low-priority request behind the wedged blocker is refused with a
     deterministic 800 ms retry hint; exempt priority sails through. *)
  let fd = Fault.create ~seed (Fault.parse_exn "hang=svc-6@250") in
  let shed =
    { Service.sp_max_delay_s = 0.2; Service.sp_exempt_priority = 50; Service.sp_assumed_build_s = 1.0 }
  in
  let svc = Service.create ~queue_workers:1 ~watchdog_tick_s:0.01 ~shed ~faults:fd ~telemetry:tele () in
  let blocker =
    match Service.submit svc ~tenant:"chaos" (chain [ 6 ]) with Ok tk -> Some tk | Error _ -> None
  in
  pushb lg "shed blocker admitted" (blocker <> None);
  ignore (wait_until (fun () -> (Service.stats svc).Service.st_in_flight = 1));
  let sheds =
    List.map (fun i -> Service.submit svc ~tenant:"mob" (chain [ 10 + i ])) [ 0; 1; 2; 3; 4 ]
  in
  let hints =
    List.filter_map
      (function Error (Service.Shed { retry_after_ms; _ }) -> Some retry_after_ms | _ -> None)
      sheds
  in
  push lg "the whole low-priority flood was shed" (List.length hints = 5)
    (Printf.sprintf "%d shed" (List.length hints));
  pushb lg "shed replies carry a positive retry hint" (List.for_all (fun ms -> ms > 0) hints);
  (match Service.compile svc ~tenant:"vip" ~priority:50 (chain [ 20 ]) with
  | Ok _ -> pushb lg "exempt priority is never shed" true
  | Error rej -> push lg "exempt priority is never shed" false (Service.reject_message rej));
  (match blocker with Some tk -> ignore (Service.await svc tk) | None -> ());
  let std = Service.stats svc in
  push lg "five shed refusals counted" (std.Service.st_shed = 5)
    (Printf.sprintf "%d shed" std.Service.st_shed);
  conserve "shed" std;
  Service.shutdown svc;
  let counters =
    [
      ("shed", T.counter_value tele "service.shed");
      ("deadline_exceeded", T.counter_value tele "service.deadline_exceeded");
      ("watchdog_kills", T.counter_value tele "service.watchdog_kills");
      ("lost", T.counter_value tele "service.lost");
    ]
  in
  finish ~name:"overload" ~t0 ~counters lg

(* ---------- kill-daemon: SIGKILL the whole daemon under load ---------- *)

(* A forked daemon (real Server over a persistent store) serves a
   compile flood; the parent SIGKILLs it at a seeded moment — possibly
   mid-store-write — then proves the crash cost nothing durable: the
   stale socket is reclaimed by the connect-probe, the store scrubs
   clean, and every surviving artifact reads back valid. *)
let scenario_kill_daemon ~seed ~root _log =
  let t0 = Unix.gettimeofday () in
  let lg = { checks = [] } in
  let dir = fresh_dir ~root ~seed "kill-daemon" in
  let socket = Filename.concat dir "pldd.sock" in
  let cache_dir = Filename.concat dir "store" in
  let rng = Rng.create ((seed * 7919) + 3) in
  (match Unix.fork () with
  | 0 ->
      (try
         let svc = Service.create ~cache_dir ~quarantine:true ~queue_workers:1 () in
         ignore
           (Server.serve ~socket ~install_signals:false
              ~logger:(Pld_telemetry.Log.create ())
              ~service:svc
              ~handler:(fun t e -> Server.handle t ~resolve:chain_resolve e)
              ())
       with _ -> ());
      Unix._exit 0
  | pid ->
      pushb lg "daemon came up" (wait_until (fun () -> Sys.file_exists socket));
      pushb lg "claim_socket refuses the live daemon"
        (match Server.claim_socket socket with Error _ -> true | Ok () -> false);
      (* Kill at a seeded moment while the flood below is compiling. *)
      let killer =
        Thread.create
          (fun () ->
            Unix.sleepf (0.05 +. Rng.float rng 0.15);
            Unix.kill pid Sys.sigkill)
          ()
      in
      let served = ref 0 in
      (try
         for i = 1 to 500 do
           let bench = Traffic.chain_name [ i mod 12; (i / 12) mod 12 ] in
           match
             Client.rpc ~socket
               (Protocol.envelope ~tenant:"chaos" (Protocol.Compile { bench; level = "O1" }))
           with
           | Ok r when r.Protocol.ok -> incr served
           | Ok _ -> ()
           | Error _ -> raise Exit
         done
       with Exit -> ());
      Thread.join killer;
      let _, status = Unix.waitpid [] pid in
      pushb lg "daemon died by SIGKILL" (status = Unix.WSIGNALED Sys.sigkill);
      push lg "requests were served before the kill" (!served >= 1)
        (Printf.sprintf "%d served" !served));
  pushb lg "stale socket reclaimed by the connect-probe"
    (match Server.claim_socket socket with Ok () -> true | Error _ -> false);
  pushb lg "stale socket actually removed" (not (Sys.file_exists socket));
  let tele = T.create () in
  let st = Store.open_ ~quarantine:true ~telemetry:tele ~dir:cache_dir () in
  let rep = Store.scrub st in
  push lg "store scrubs clean after the crash" (rep.Store.sc_quarantined = 0) (Store.render_scrub rep);
  pushb lg "zero corrupt reads after restart" (readable_entries st);
  let counters =
    [
      ("entries", Store.count st);
      ("quarantined", T.counter_value tele "store.quarantined");
    ]
  in
  finish ~name:"kill-daemon" ~t0 ~counters lg

(* ---------- runner ---------- *)

let scenarios =
  [
    ("crash-writer", scenario_crash_writer);
    ("kill-daemon", scenario_kill_daemon);
    ("corrupt-store", scenario_corrupt_store);
    ("conn-storm", scenario_conn_storm);
    ("overload", scenario_overload);
  ]

let scenario_names = List.map fst scenarios

let deterministic_names = [ "corrupt-store"; "conn-storm"; "overload" ]

(* OCaml 5 forbids Unix.fork once any domain has ever been spawned in
   the process, so the forked scenarios must all run — across every
   seed — before the first Service (worker domains) is created. *)
let forked_names = [ "crash-writer"; "kill-daemon" ]

let select only =
  match only with
  | None -> scenarios
  | Some names ->
      List.iter
        (fun n ->
          if not (List.mem_assoc n scenarios) then
            invalid_arg
              (Printf.sprintf "unknown chaos scenario %S (have: %s)" n
                 (String.concat ", " scenario_names)))
        names;
      List.filter (fun (n, _) -> List.mem n names) scenarios

let with_sigpipe_ignored f =
  (* A dropped client makes the server write into a closed socket;
     that must surface as EPIPE, not kill the process. *)
  let prev =
    match Sys.signal Sys.sigpipe Sys.Signal_ignore with
    | s -> Some s
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  Fun.protect
    ~finally:(fun () -> match prev with Some s -> Sys.set_signal Sys.sigpipe s | None -> ())
    f

let run_scenario ~seed ~dir ~log (name, f) =
  log (Printf.sprintf "chaos: %s (seed %d)..." name seed);
  let r = f ~seed ~root:dir log in
  log
    (Printf.sprintf "chaos: %s %s (%.2fs)" name
       (if scenario_ok r then "ok" else "FAILED")
       r.sr_wall_s);
  r

let run_seeds ?(seeds = [ 7 ]) ?dir ?only ?(log = fun _ -> ()) () =
  with_sigpipe_ignored (fun () ->
      let wanted = select only in
      let forked, domainful = List.partition (fun (n, _) -> List.mem n forked_names) wanted in
      (* Phase 1: everything that forks, for every seed; phase 2: the
         domain-creating rest. Reports are reassembled per seed in
         registry order. *)
      let phase scen = List.map (fun seed -> (seed, List.map (run_scenario ~seed ~dir ~log) scen)) seeds in
      let fork_phase = phase forked in
      let domain_phase = phase domainful in
      List.map
        (fun seed ->
          let of_phase p = try List.assoc seed p with Not_found -> [] in
          let parts = of_phase fork_phase @ of_phase domain_phase in
          let ordered =
            List.filter_map
              (fun (n, _) -> List.find_opt (fun s -> s.sr_name = n) parts)
              wanted
          in
          { r_seed = seed; r_scenarios = ordered })
        seeds)

let run ?(seed = 7) ?dir ?only ?(log = fun _ -> ()) () =
  match run_seeds ~seeds:[ seed ] ?dir ?only ~log () with
  | [ r ] -> r
  | _ -> assert false

(* ---------- reporting ---------- *)

let report_json r =
  Json.Obj
    [
      ("seed", Json.Int r.r_seed);
      ("ok", Json.Bool (ok r));
      ( "scenarios",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.String s.sr_name);
                   ("ok", Json.Bool (scenario_ok s));
                   ("wall_s", Json.Float s.sr_wall_s);
                   ( "checks",
                     Json.List
                       (List.map
                          (fun c ->
                            Json.Obj
                              [
                                ("name", Json.String c.ck_name);
                                ("ok", Json.Bool c.ck_ok);
                                ("detail", Json.String c.ck_detail);
                              ])
                          s.sr_checks) );
                   ( "counters",
                     Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.sr_counters) );
                 ])
             r.r_scenarios) );
    ]

let render r =
  List.concat_map
    (fun s ->
      Printf.sprintf "%-14s %s  (%.2fs)" s.sr_name
        (if scenario_ok s then "ok" else "FAILED")
        s.sr_wall_s
      :: List.map
           (fun c ->
             Printf.sprintf "  [%s] %s%s"
               (if c.ck_ok then "pass" else "FAIL")
               c.ck_name
               (if c.ck_detail = "" then "" else ": " ^ c.ck_detail))
           s.sr_checks
      @ List.map (fun (k, v) -> Printf.sprintf "    %s = %d" k v) s.sr_counters)
    r.r_scenarios
