open Pld_ir
module Rng = Pld_util.Rng
module Json = Pld_telemetry.Json
module Quantile = Pld_telemetry.Quantile

type options = {
  sessions : int;
  tenants : int;
  zipf : float;
  pool : int;
  max_chain : int;
  level : Pld_core.Build.level;
  seed : int;
}

let default_options =
  {
    sessions = 200;
    tenants = 4;
    zipf = 1.1;
    pool = 24;
    max_chain = 3;
    level = Pld_core.Build.O1;
    seed = 11;
  }

(* Every pool operator consumes and produces exactly [frame_tokens]
   words per body execution. The linked runner executes each body once
   per frame, so rate-uniformity is what keeps arbitrary chains
   deadlock-free; cost still varies with [i] — deeper multiply-add
   chains are genuinely more work for HLS and P&R — and the coefficient
   keeps every source distinct in the cache. *)
let frame_tokens = 32

let pool_op i =
  let i32 = Dtype.SInt 32 in
  let coeff = Expr.int i32 (i + 3) in
  let rec deepen e k =
    if k = 0 then e else deepen Expr.(Bin (Add, Bin (Mul, e, coeff), Var "x")) (k - 1)
  in
  Op.make
    ~name:(Printf.sprintf "svc%d" i)
    ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
    ~locals:[ Op.scalar "x" i32; Op.scalar "y" i32 ]
    [
      Op.For
        {
          var = "k";
          lo = 0;
          hi = frame_tokens;
          pipeline = true;
          body =
            [
              Op.Read (Op.LVar "x", "in");
              (* Depth caps at 3 multiply-adds: deeper chains outgrow
                 the largest page's DSP budget and would never fit. *)
              Op.Assign (Op.LVar "y", deepen Expr.(Var "x") (1 + (i mod 3)));
              Op.Write ("out", Expr.(Bin (Add, Var "y", Var "x")));
            ];
        };
    ]

let chain_tokens _chain = frame_tokens

let chain_workload chain =
  let n = chain_tokens chain in
  [ ("cin", List.init n (fun i -> Value.of_int Dtype.word (i + 1))) ]

let chain_name chain = "svc-" ^ String.concat "x" (List.map string_of_int chain)

let chain_of_name name =
  match String.length name > 4 && String.sub name 0 4 = "svc-" with
  | false -> Error (Printf.sprintf "not a traffic chain name: %S" name)
  | true -> (
      let rest = String.sub name 4 (String.length name - 4) in
      let parts = String.split_on_char 'x' rest in
      let idx = List.map int_of_string_opt parts in
      match List.for_all Option.is_some idx with
      | true -> Ok (List.map Option.get idx)
      | false -> Error (Printf.sprintf "malformed traffic chain name: %S" name))

let chain_graph chain =
  let k = List.length chain in
  let chan i = if i = 0 then "cin" else if i = k then "cout" else Printf.sprintf "c%d" i in
  Graph.make ~name:(chain_name chain)
    ~channels:(List.init (k + 1) (fun i -> Graph.channel (chan i)))
    ~instances:
      (List.mapi
         (fun i idx ->
           Graph.instance
             ~name:(Printf.sprintf "s%d" i)
             (pool_op idx)
             [ ("in", chan i); ("out", chan (i + 1)) ])
         chain)
    ~inputs:[ "cin" ] ~outputs:[ "cout" ]

let zipf_sample rng ~pool ~s =
  let w = Array.init pool (fun r -> 1.0 /. (float_of_int (r + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let u = Rng.float rng total in
  let rec walk i acc =
    if i >= pool - 1 then pool - 1
    else
      let acc = acc +. w.(i) in
      if u < acc then i else walk (i + 1) acc
  in
  walk 0 0.0

let sample_chain rng (o : options) =
  let len = 1 + Rng.int rng (max 1 o.max_chain) in
  List.init len (fun _ -> zipf_sample rng ~pool:(max 1 o.pool) ~s:o.zipf)

type summary = {
  sm_options : options;
  sm_wall_seconds : float;
  sm_completed : int;
  sm_failed : int;
  sm_backpressure : int;
  sm_deduped : int;
  sm_cross_hits : int;
  sm_distinct_graphs : int;
  sm_cache_hits : int;
  sm_recompiled : int;
  sm_store_writes : int;
  sm_p50 : float;
  sm_p95 : float;
  sm_p99 : float;
  sm_mean : float;
  sm_max : float;
  sm_per_tenant : (string * int) list;
  sm_cross_rate : float;
}

let run ~service (o : options) =
  let rng = Rng.create o.seed in
  let t0 = Unix.gettimeofday () in
  let outstanding = Queue.create () in
  let distinct = Hashtbl.create 64 in
  let per_tenant = Hashtbl.create 8 in
  let completed = ref 0
  and failed = ref 0
  and backpressure = ref 0
  and deduped = ref 0
  and cross = ref 0
  and hits = ref 0
  and recompiled = ref 0
  and writes = ref 0
  and latencies = ref [] in
  let record = function
    | Error _ -> incr failed
    | Ok (oc : Service.outcome) ->
        incr completed;
        if oc.Service.o_deduped then incr deduped;
        if oc.Service.o_cross_tenant then incr cross;
        hits := !hits + oc.Service.o_cache_hits;
        recompiled := !recompiled + oc.Service.o_recompiled;
        writes := !writes + oc.Service.o_store_writes;
        latencies := oc.Service.o_latency_seconds :: !latencies;
        let tn = oc.Service.o_tenant in
        Hashtbl.replace per_tenant tn (1 + Option.value ~default:0 (Hashtbl.find_opt per_tenant tn))
  in
  for s = 0 to o.sessions - 1 do
    let tenant = Printf.sprintf "t%d" (s mod max 1 o.tenants) in
    let priority = Rng.int rng 3 in
    let chain = sample_chain rng o in
    Hashtbl.replace distinct chain ();
    let g = chain_graph chain in
    let rec admit () =
      match Service.submit service ~tenant ~priority ~level:o.level g with
      | Ok ticket -> Queue.add ticket outstanding
      | Error _ ->
          (* Backpressure: drain one outstanding build, then retry. *)
          incr backpressure;
          if Queue.is_empty outstanding then Unix.sleepf 0.001
          else record (Service.await service (Queue.pop outstanding));
          admit ()
    in
    admit ()
  done;
  Queue.iter (fun ticket -> record (Service.await service ticket)) outstanding;
  let wall = Unix.gettimeofday () -. t0 in
  let lats = List.rev !latencies in
  let n = max 1 (List.length lats) in
  {
    sm_options = o;
    sm_wall_seconds = wall;
    sm_completed = !completed;
    sm_failed = !failed;
    sm_backpressure = !backpressure;
    sm_deduped = !deduped;
    sm_cross_hits = !cross;
    sm_distinct_graphs = Hashtbl.length distinct;
    sm_cache_hits = !hits;
    sm_recompiled = !recompiled;
    sm_store_writes = !writes;
    sm_p50 = Quantile.of_samples lats 0.50;
    sm_p95 = Quantile.of_samples lats 0.95;
    sm_p99 = Quantile.of_samples lats 0.99;
    sm_mean = List.fold_left ( +. ) 0.0 lats /. float_of_int n;
    sm_max = List.fold_left Float.max 0.0 lats;
    sm_per_tenant =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_tenant []);
    sm_cross_rate = (if !completed = 0 then 0.0 else float_of_int !cross /. float_of_int !completed);
  }

let summary_json (s : summary) =
  Json.Obj
    [
      ("sessions", Json.Int s.sm_options.sessions);
      ("tenants", Json.Int s.sm_options.tenants);
      ("zipf", Json.Float s.sm_options.zipf);
      ("pool", Json.Int s.sm_options.pool);
      ("max_chain", Json.Int s.sm_options.max_chain);
      ("level", Json.String (Pld_core.Build.level_name s.sm_options.level));
      ("seed", Json.Int s.sm_options.seed);
      ("wall_seconds", Json.Float s.sm_wall_seconds);
      ("completed", Json.Int s.sm_completed);
      ("failed", Json.Int s.sm_failed);
      ("backpressure_retries", Json.Int s.sm_backpressure);
      ("deduped", Json.Int s.sm_deduped);
      ("cross_tenant_hits", Json.Int s.sm_cross_hits);
      ("cross_tenant_hit_rate", Json.Float s.sm_cross_rate);
      ("distinct_graphs", Json.Int s.sm_distinct_graphs);
      ("cache_hits", Json.Int s.sm_cache_hits);
      ("recompiled", Json.Int s.sm_recompiled);
      ("store_writes", Json.Int s.sm_store_writes);
      ("latency_p50_s", Json.Float s.sm_p50);
      ("latency_p95_s", Json.Float s.sm_p95);
      ("latency_p99_s", Json.Float s.sm_p99);
      ("latency_mean_s", Json.Float s.sm_mean);
      ("latency_max_s", Json.Float s.sm_max);
      ( "per_tenant_jobs",
        Json.Obj (List.map (fun (t, n) -> (t, Json.Int n)) s.sm_per_tenant) );
    ]

let render (s : summary) =
  [
    Printf.sprintf "%d sessions, %d tenants, zipf %.2f over %d ops (seed %d): %.2f s wall"
      s.sm_options.sessions s.sm_options.tenants s.sm_options.zipf s.sm_options.pool
      s.sm_options.seed s.sm_wall_seconds;
    Printf.sprintf "completed %d (failed %d, backpressure retries %d), %d distinct graphs"
      s.sm_completed s.sm_failed s.sm_backpressure s.sm_distinct_graphs;
    Printf.sprintf "shared-store economics: %d dedup, %d cross-tenant hits (rate %.3f), %d op hits, %d recompiles, %d store writes"
      s.sm_deduped s.sm_cross_hits s.sm_cross_rate s.sm_cache_hits s.sm_recompiled
      s.sm_store_writes;
    Printf.sprintf "latency s: p50 %.4f  p95 %.4f  p99 %.4f  mean %.4f  max %.4f" s.sm_p50
      s.sm_p95 s.sm_p99 s.sm_mean s.sm_max;
    "per-tenant jobs: "
    ^ String.concat "  " (List.map (fun (t, n) -> Printf.sprintf "%s=%d" t n) s.sm_per_tenant);
  ]
