open Pld_ir
open Pld_core
module Fp = Pld_fabric.Floorplan
module T = Pld_telemetry.Telemetry
module Json = Pld_telemetry.Json
module Log = Pld_telemetry.Log
module Quantile = Pld_telemetry.Quantile

type quota = { max_in_flight : int; max_queued : int; cache_write_budget : int option }

let default_quota = { max_in_flight = 4; max_queued = 64; cache_write_budget = None }

type outcome = {
  o_tenant : string;
  o_graph : string;
  o_level : Build.level;
  o_cache_hits : int;
  o_recompiled : int;
  o_store_writes : int;
  o_deduped : bool;
  o_cross_tenant : bool;
  o_queue_seconds : float;
  o_build_seconds : float;
  o_latency_seconds : float;
  o_app : Build.app;
}

let outcome_json o =
  Json.Obj
    [
      ("tenant", Json.String o.o_tenant);
      ("graph", Json.String o.o_graph);
      ("level", Json.String (Build.level_name o.o_level));
      ("cache_hits", Json.Int o.o_cache_hits);
      ("recompiled", Json.Int o.o_recompiled);
      ("store_writes", Json.Int o.o_store_writes);
      ("deduped", Json.Bool o.o_deduped);
      ("cross_tenant", Json.Bool o.o_cross_tenant);
      ("queue_seconds", Json.Float o.o_queue_seconds);
      ("build_seconds", Json.Float o.o_build_seconds);
      ("latency_seconds", Json.Float o.o_latency_seconds);
    ]

(* Structured refusals and failures: the daemon maps these onto wire
   states (SHED, DRAINING, ...) and the chaos harness onto conservation
   ledger classes, so a stringly-typed error can never be double- or
   un-counted. *)
type reject =
  | Queue_full of { tenant : string; queued : int; max_queued : int }
  | Shed of { retry_after_ms : int; reason : string }
  | Deadline_exceeded of { stage : string; overrun_ms : int }
  | Draining of string
  | Lost of string
  | Build_failed of string

let reject_message = function
  | Queue_full { tenant; queued; max_queued } ->
      Printf.sprintf "tenant %s: queue full (%d admitted, max %d)" tenant queued max_queued
  | Shed { retry_after_ms; reason } ->
      Printf.sprintf "shed: %s (retry after %d ms)" reason retry_after_ms
  | Deadline_exceeded { stage; overrun_ms } ->
      Printf.sprintf "deadline exceeded while %s (%d ms over)" stage overrun_ms
  | Draining msg -> msg
  | Lost msg -> msg
  | Build_failed msg -> msg

let reject_state = function
  | Queue_full _ -> "QUEUE_FULL"
  | Shed _ -> "SHED"
  | Deadline_exceeded _ -> "DEADLINE_EXCEEDED"
  | Draining _ -> "DRAINING"
  | Lost _ -> "LOST"
  | Build_failed _ -> "FAILED"

let reject_retry_after_ms = function
  | Shed { retry_after_ms; _ } -> Some retry_after_ms
  | Queue_full _ | Draining _ -> Some 100
  | Deadline_exceeded _ | Lost _ | Build_failed _ -> None

type shed_policy = {
  sp_max_delay_s : float;
  sp_exempt_priority : int;
  sp_assumed_build_s : float;
}

let default_shed_policy =
  { sp_max_delay_s = 30.0; sp_exempt_priority = 100; sp_assumed_build_s = 0.05 }

type job_state = Queued | Running | Finished of (outcome, reject) result

type job = {
  j_id : int;
  j_tenant : string;
  j_priority : int;
  j_graph : Graph.t;
  j_level : Build.level;
  j_key : string;
  j_trace : string;  (* request trace id, client-minted or server-filled *)
  j_enqueued : float;
  j_deadline : float option;  (* absolute wall-clock budget end *)
  mutable j_started : float;  (* dispatch time; 0.0 while queued *)
  mutable j_abandoned : bool;  (* watchdog wrote this build off *)
  mutable j_state : job_state;
  mutable j_followers : job list;  (* dedup piggybacks, primaries only *)
}

type ticket = job

(* Per-tenant latency lives as bucket counts, not sample lists: tenants
   are unbounded in request count, and the status endpoint derives
   p50/p95/p99 from the buckets on demand. Shared edges keep tenants
   comparable. *)
let latency_edges = [| 0.001; 0.003; 0.01; 0.03; 0.1; 0.3; 1.0; 3.0; 10.0; 30.0 |]

type tenant = {
  tn_name : string;
  tn_quota : quota;
  tn_lat_counts : int array;  (* length = latency_edges + 1; last is +inf *)
  mutable tn_queued : int;
  mutable tn_in_flight : int;
  mutable tn_submitted : int;
  mutable tn_completed : int;
  mutable tn_failed : int;
  mutable tn_rejected : int;
  mutable tn_deduped : int;
  mutable tn_cross_hits : int;
  mutable tn_store_writes : int;
}

(* Must hold t.mu (the arrays are guarded by the service lock). *)
let observe_tenant_latency tn seconds =
  let n = Array.length latency_edges in
  let rec slot i = if i >= n then n else if seconds <= latency_edges.(i) then i else slot (i + 1) in
  let i = slot 0 in
  tn.tn_lat_counts.(i) <- tn.tn_lat_counts.(i) + 1

type t = {
  mu : Mutex.t;
  cond : Condition.t;
  sv_cache : Build.cache;
  ro_cache : Build.cache;  (* readonly view for exhausted write budgets *)
  fp : Fp.t;
  telemetry : T.t;
  logger : Log.t;
  t_started : float;
  workers : int;
  jobs : int;
  pace : float;
  seed : int;
  queue_workers : int;
  shed : shed_policy option;
  watchdog_timeout_s : float option;
  wd_tick_s : float;
  faults : Pld_faults.Fault.t option;  (* hang= specs wedge builds by graph name *)
  dq : quota;
  tenants : (string, tenant) Hashtbl.t;
  mutable pending : job list;  (* admission order, newest last *)
  inflight : (string, job) Hashtbl.t;  (* key -> queued/running primary *)
  running : (int, job) Hashtbl.t;  (* job id -> dispatched job, watchdog's beat *)
  first_tenant : (string, string) Hashtbl.t;  (* key -> first submitter *)
  mutable next_id : int;
  mutable stopping : bool;
  mutable draining : bool;
  mutable pool : unit Domain.t list;
  mutable wd_domain : unit Domain.t option;
  mutable avg_build_s : float;  (* EWMA of primary build wall time *)
  (* global counters *)
  mutable g_submitted : int;
  mutable g_completed : int;
  mutable g_failed : int;
  mutable g_rejected : int;
  mutable g_shed : int;
  mutable g_deadline : int;
  mutable g_lost : int;
  mutable g_wd_kills : int;
  mutable g_deduped : int;
  mutable g_cross : int;
  mutable g_latencies : float list;  (* reversed: newest first *)
}

(* Counter handles are re-fetched per bump so a [Telemetry.reset]
   between calls cannot strand a stale handle. *)
let bump t name = T.incr (T.counter t.telemetry ("service." ^ name))

let set_depth_gauges t =
  T.set_gauge (T.gauge t.telemetry "service.queue_depth") (float_of_int (List.length t.pending));
  let in_flight = Hashtbl.fold (fun _ tn acc -> acc + tn.tn_in_flight) t.tenants 0 in
  T.set_gauge (T.gauge t.telemetry "service.in_flight") (float_of_int in_flight)

let tenant_of t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tn -> tn
  | None ->
      let quota = t.dq in
      let tn =
        {
          tn_name = name;
          tn_quota = quota;
          tn_lat_counts = Array.make (Array.length latency_edges + 1) 0;
          tn_queued = 0;
          tn_in_flight = 0;
          tn_submitted = 0;
          tn_completed = 0;
          tn_failed = 0;
          tn_rejected = 0;
          tn_deduped = 0;
          tn_cross_hits = 0;
          tn_store_writes = 0;
        }
      in
      Hashtbl.replace t.tenants name tn;
      tn

let job_key g level = Pld_util.Digest_lite.of_parts [ Graph.source g; Build.level_name level ]

let store_writes report =
  List.fold_left
    (fun acc ev -> match ev with Pld_engine.Event.Cache_store _ -> acc + 1 | _ -> acc)
    0 report.Build.events

(* ---------- completion ---------- *)

(* Must hold t.mu: route a terminal error into its counter class.
   Admission refusals (shed, queue-full, draining) are counted at the
   submit site — they never become job states. *)
let count_error t tn (r : reject) =
  match r with
  | Build_failed _ ->
      tn.tn_failed <- tn.tn_failed + 1;
      t.g_failed <- t.g_failed + 1;
      bump t "failed"
  | Deadline_exceeded _ ->
      t.g_deadline <- t.g_deadline + 1;
      bump t "deadline_exceeded"
  | Lost _ ->
      t.g_lost <- t.g_lost + 1;
      bump t "lost"
  | Shed _ | Queue_full _ | Draining _ -> ()

(* Record the request's umbrella span on the service timeline: one wall
   span from admission to completion, carrying the trace id and the
   outcome, so a trace shows the request end-to-end even when no build
   ran for it (dedup followers, queued expiries). May run with or
   without t.mu held — it only touches the telemetry sink. *)
let request_span t (j : job) ~outcome =
  let now = Unix.gettimeofday () in
  let dur_us = Float.max 0.0 ((now -. j.j_enqueued) *. 1e6) in
  T.span t.telemetry ~cat:"service"
    ~attrs:[ ("trace", j.j_trace); ("tenant", j.j_tenant); ("outcome", outcome) ]
    ~name:"request"
    ~start_us:(T.now_us t.telemetry -. dur_us)
    ~dur_us ()

let outcome_tag = function Ok _ -> "ok" | Error e -> reject_state e

let finish_follower t primary_tenant (result : (outcome, reject) result) (f : job) =
  let now = Unix.gettimeofday () in
  let tn = tenant_of t f.j_tenant in
  let result =
    match result with
    | Error e ->
        count_error t tn e;
        Error e
    | Ok o ->
        let cross = not (String.equal primary_tenant f.j_tenant) in
        tn.tn_completed <- tn.tn_completed + 1;
        tn.tn_deduped <- tn.tn_deduped + 1;
        t.g_completed <- t.g_completed + 1;
        t.g_deduped <- t.g_deduped + 1;
        bump t "completed";
        bump t "dedup_hits";
        if cross then begin
          tn.tn_cross_hits <- tn.tn_cross_hits + 1;
          t.g_cross <- t.g_cross + 1;
          bump t "cross_tenant_hits"
        end;
        let latency = now -. f.j_enqueued in
        t.g_latencies <- latency :: t.g_latencies;
        T.observe (T.histogram t.telemetry "service.latency_seconds") latency;
        observe_tenant_latency tn latency;
        Ok
          {
            o with
            o_tenant = f.j_tenant;
            o_cache_hits = 0;
            o_recompiled = 0;
            o_store_writes = 0;
            o_deduped = true;
            o_cross_tenant = cross;
            o_queue_seconds = now -. f.j_enqueued;
            o_build_seconds = 0.0;
            o_latency_seconds = latency;
          }
  in
  f.j_state <- Finished result;
  request_span t f ~outcome:(outcome_tag result);
  Log.debug t.logger ~trace:f.j_trace
    ~fields:[ ("tenant", f.j_tenant); ("primary_tenant", primary_tenant) ]
    ~sub:"service.dedup"
    (Printf.sprintf "follower finished (%s)" (outcome_tag result))

(* Must hold t.mu. *)
let finish t (j : job) started result =
  let now = Unix.gettimeofday () in
  let tn = tenant_of t j.j_tenant in
  tn.tn_in_flight <- tn.tn_in_flight - 1;
  Hashtbl.remove t.inflight j.j_key;
  Hashtbl.remove t.running j.j_id;
  let result =
    match result with
    | Error e ->
        count_error t tn e;
        Error e
    | Ok (app : Build.app) ->
        let writes = store_writes app.Build.report in
        tn.tn_store_writes <- tn.tn_store_writes + writes;
        let cross =
          app.Build.report.Build.recompiled = 0
          &&
          match Hashtbl.find_opt t.first_tenant j.j_key with
          | Some first -> not (String.equal first j.j_tenant)
          | None -> false
        in
        tn.tn_completed <- tn.tn_completed + 1;
        t.g_completed <- t.g_completed + 1;
        bump t "completed";
        if cross then begin
          tn.tn_cross_hits <- tn.tn_cross_hits + 1;
          t.g_cross <- t.g_cross + 1;
          bump t "cross_tenant_hits"
        end;
        let latency = now -. j.j_enqueued in
        t.g_latencies <- latency :: t.g_latencies;
        T.observe (T.histogram t.telemetry "service.latency_seconds") latency;
        observe_tenant_latency tn latency;
        (* EWMA of build wall time feeds the shed policy's queue-delay
           estimate. *)
        t.avg_build_s <- (0.7 *. t.avg_build_s) +. (0.3 *. (now -. started));
        Ok
          {
            o_tenant = j.j_tenant;
            o_graph = j.j_graph.Graph.graph_name;
            o_level = j.j_level;
            o_cache_hits = app.Build.report.Build.cache_hits;
            o_recompiled = app.Build.report.Build.recompiled;
            o_store_writes = writes;
            o_deduped = false;
            o_cross_tenant = cross;
            o_queue_seconds = started -. j.j_enqueued;
            o_build_seconds = now -. started;
            o_latency_seconds = latency;
            o_app = app;
          }
  in
  j.j_state <- Finished result;
  request_span t j ~outcome:(outcome_tag result);
  (match result with
  | Ok o ->
      Log.info t.logger ~trace:j.j_trace
        ~fields:
          [
            ("tenant", j.j_tenant);
            ("graph", j.j_graph.Graph.graph_name);
            ("level", Build.level_name j.j_level);
            ("latency_s", Printf.sprintf "%.4f" o.o_latency_seconds);
            ("cache_hits", string_of_int o.o_cache_hits);
          ]
        ~sub:"service.build" "completed"
  | Error e ->
      Log.warn t.logger ~trace:j.j_trace
        ~fields:[ ("tenant", j.j_tenant); ("graph", j.j_graph.Graph.graph_name) ]
        ~sub:"service.build"
        (Printf.sprintf "failed (%s): %s" (reject_state e) (reject_message e)));
  List.iter (finish_follower t j.j_tenant result) (List.rev j.j_followers);
  j.j_followers <- [];
  set_depth_gauges t;
  Condition.broadcast t.cond

(* Must hold t.mu. Fail a job that never reached a worker (queued
   deadline expiry, shutdown orphan). The caller has already removed it
   from t.pending. *)
let fail_queued t (j : job) rej =
  let tn = tenant_of t j.j_tenant in
  tn.tn_queued <- tn.tn_queued - 1;
  Hashtbl.remove t.inflight j.j_key;
  count_error t tn rej;
  let r = Error rej in
  j.j_state <- Finished r;
  request_span t j ~outcome:(reject_state rej);
  Log.warn t.logger ~trace:j.j_trace
    ~fields:[ ("tenant", j.j_tenant); ("graph", j.j_graph.Graph.graph_name) ]
    ~sub:"service.queue"
    (Printf.sprintf "failed queued (%s): %s" (reject_state rej) (reject_message rej));
  List.iter
    (fun f ->
      count_error t (tenant_of t f.j_tenant) rej;
      f.j_state <- Finished r;
      request_span t f ~outcome:(reject_state rej))
    (List.rev j.j_followers);
  j.j_followers <- [];
  set_depth_gauges t;
  Condition.broadcast t.cond

(* Must hold t.mu: expire queued jobs whose deadline has passed, in
   deadline order, so an earlier deadline never outlives a later one.
   Runs at every scheduling decision and every watchdog tick. *)
let expire_deadlines t =
  let now = Unix.gettimeofday () in
  let expired, alive =
    List.partition
      (fun j -> match j.j_deadline with Some d -> now > d | None -> false)
      t.pending
  in
  if expired <> [] then begin
    t.pending <- alive;
    List.iter
      (fun j ->
        let d = Option.get j.j_deadline in
        let overrun_ms = max 0 (int_of_float ((now -. d) *. 1000.0)) in
        fail_queued t j (Deadline_exceeded { stage = "queued"; overrun_ms }))
      (List.sort (fun a b -> compare a.j_deadline b.j_deadline) expired)
  end

(* Must hold t.mu. The watchdog gave up on a running build: the job
   (and its followers) fail as lost, the build is quarantined in its
   worker — the caller spawns a replacement worker, and the zombie's
   eventual return is ignored via j_abandoned. *)
let abandon_running t (j : job) ~ran_s =
  j.j_abandoned <- true;
  Hashtbl.remove t.running j.j_id;
  let tn = tenant_of t j.j_tenant in
  tn.tn_in_flight <- tn.tn_in_flight - 1;
  Hashtbl.remove t.inflight j.j_key;
  t.g_wd_kills <- t.g_wd_kills + 1;
  bump t "watchdog_kills";
  let rej = Lost (Printf.sprintf "watchdog: build wedged for %.2fs, worker quarantined" ran_s) in
  count_error t tn rej;
  let r = Error rej in
  j.j_state <- Finished r;
  request_span t j ~outcome:(reject_state rej);
  (* Error level: with a flight recorder armed on the logger, this is
     the event that dumps the ring and a metrics snapshot to disk. *)
  Log.error t.logger ~trace:j.j_trace
    ~fields:
      [
        ("tenant", j.j_tenant);
        ("graph", j.j_graph.Graph.graph_name);
        ("ran_s", Printf.sprintf "%.2f" ran_s);
      ]
    ~sub:"service.watchdog" "build wedged, worker quarantined";
  List.iter
    (fun f ->
      count_error t (tenant_of t f.j_tenant) rej;
      f.j_state <- Finished r;
      request_span t f ~outcome:(reject_state rej))
    (List.rev j.j_followers);
  j.j_followers <- [];
  set_depth_gauges t;
  Condition.broadcast t.cond

(* Must hold t.mu: estimated seconds before a newly admitted job at
   [priority] would reach a worker — pending work at or above its
   priority plus the running builds, amortized over the pool at the
   observed (EWMA) build time. *)
let queue_delay_estimate t ~priority =
  let ahead =
    List.fold_left (fun acc p -> if p.j_priority >= priority then acc + 1 else acc) 0 t.pending
  in
  let running = Hashtbl.length t.running in
  float_of_int (ahead + running) *. t.avg_build_s /. float_of_int (max 1 t.queue_workers)

(* ---------- scheduling ---------- *)

(* Highest priority first, FIFO within a priority, skipping tenants at
   their in-flight limit. Must hold t.mu. *)
let select t =
  let eligible j =
    let tn = tenant_of t j.j_tenant in
    tn.tn_in_flight < tn.tn_quota.max_in_flight
  in
  List.fold_left
    (fun acc j ->
      if not (eligible j) then acc
      else
        match acc with
        | Some b when b.j_priority >= j.j_priority -> acc (* earlier admission wins ties *)
        | Some _ | None -> Some j)
    None t.pending

let cache_for t tn =
  match tn.tn_quota.cache_write_budget with
  | Some budget when tn.tn_store_writes >= budget -> t.ro_cache
  | Some _ | None -> t.sv_cache

let run_job t (j : job) =
  let tn = tenant_of t j.j_tenant in
  let cache = cache_for t tn in
  let started = j.j_started in
  Mutex.unlock t.mu;
  (* A seeded hang= fault keyed by graph name models a wedged tool
     invocation (cycles are milliseconds here): the build sits in its
     worker until the watchdog writes it off. *)
  (match t.faults with
  | Some f -> (
      match Pld_faults.Fault.hang_cycles f ~inst:j.j_graph.Graph.graph_name with
      | Some ms -> Unix.sleepf (float_of_int ms /. 1000.0)
      | None -> ())
  | None -> ());
  (* Deadline checks ride the executor's event stream: every job
     start/finish is a tool-phase boundary, so an expired build stops
     at the next boundary instead of running to completion. *)
  let deadline_hit = ref false in
  let on_event _ =
    match j.j_deadline with
    | Some d when Unix.gettimeofday () > d ->
        deadline_hit := true;
        raise Exit
    | _ -> ()
  in
  let result =
    try
      Ok
        (Build.compile ~cache ~workers:t.workers ~jobs:t.jobs ~pace:t.pace ~seed:t.seed ~on_event
           ~telemetry:t.telemetry
           ~attrs:[ ("trace", j.j_trace); ("tenant", j.j_tenant) ]
           t.fp j.j_graph ~level:j.j_level)
    with e -> Error e
  in
  Mutex.lock t.mu;
  if j.j_abandoned then
    (* The watchdog already failed this job and replaced this worker;
       the late result is dropped on the floor. *)
    bump t "watchdog_late_returns"
  else
    let result =
      match result with
      | Ok app -> Ok app
      | Error _ when !deadline_hit ->
          let overrun_ms =
            match j.j_deadline with
            | Some d -> max 0 (int_of_float ((Unix.gettimeofday () -. d) *. 1000.0))
            | None -> 0
          in
          Error (Deadline_exceeded { stage = "build"; overrun_ms })
      | Error e -> Error (Build_failed (Printexc.to_string e))
    in
    finish t j started result

let rec worker_loop t =
  let job =
    let rec pick () =
      if t.stopping then None
      else begin
        expire_deadlines t;
        match select t with
        | Some j ->
            t.pending <- List.filter (fun p -> p.j_id <> j.j_id) t.pending;
            j.j_state <- Running;
            j.j_started <- Unix.gettimeofday ();
            Hashtbl.replace t.running j.j_id j;
            let tn = tenant_of t j.j_tenant in
            tn.tn_queued <- tn.tn_queued - 1;
            tn.tn_in_flight <- tn.tn_in_flight + 1;
            (* The queue wait becomes a span on the request's trace:
               admission to dispatch, recorded at dispatch. *)
            let wait_us = Float.max 0.0 ((j.j_started -. j.j_enqueued) *. 1e6) in
            T.span t.telemetry ~cat:"service"
              ~attrs:[ ("trace", j.j_trace); ("tenant", j.j_tenant) ]
              ~name:"queue.wait"
              ~start_us:(T.now_us t.telemetry -. wait_us)
              ~dur_us:wait_us ();
            Log.debug t.logger ~trace:j.j_trace
              ~fields:
                [ ("tenant", j.j_tenant); ("wait_s", Printf.sprintf "%.4f" (wait_us /. 1e6)) ]
              ~sub:"service.queue" "dispatched";
            set_depth_gauges t;
            Some j
        | None ->
            Condition.wait t.cond t.mu;
            pick ()
      end
    in
    Mutex.lock t.mu;
    pick ()
  in
  match job with
  | None -> Mutex.unlock t.mu
  | Some j ->
      run_job t j;
      let abandoned = j.j_abandoned in
      Mutex.unlock t.mu;
      (* An abandoned job means the watchdog replaced this worker while
         it was wedged — exit so the pool size stays constant. *)
      if not abandoned then worker_loop t

(* The watchdog doubles as the service's clock: it expires queued
   deadlines, writes off wedged builds (spawning replacement workers),
   and broadcasts the condition every tick so timed waits ([await]
   bounds, [drain]) can exist at all — stdlib [Condition] has no timed
   wait. *)
let rec watchdog_loop t =
  Mutex.lock t.mu;
  let stop = t.stopping in
  if not stop then begin
    expire_deadlines t;
    (match t.watchdog_timeout_s with
    | Some limit ->
        let now = Unix.gettimeofday () in
        let wedged =
          Hashtbl.fold
            (fun _ j acc -> if now -. j.j_started > limit then j :: acc else acc)
            t.running []
        in
        List.iter
          (fun j ->
            abandon_running t j ~ran_s:(Unix.gettimeofday () -. j.j_started);
            t.pool <- t.pool @ [ Domain.spawn (fun () -> worker_loop t) ])
          wedged
    | None -> ());
    Condition.broadcast t.cond
  end;
  Mutex.unlock t.mu;
  if not stop then begin
    Unix.sleepf t.wd_tick_s;
    watchdog_loop t
  end

(* ---------- public API ---------- *)

let create ?cache ?cache_dir ?max_bytes ?quarantine ?fp ?(queue_workers = 2) ?(workers = 22)
    ?(jobs = 1) ?(pace = 0.0) ?(seed = 7) ?(default_quota = default_quota) ?(quotas = []) ?shed
    ?watchdog_timeout_s ?(watchdog_tick_s = 0.01) ?faults ?(telemetry = T.default)
    ?(logger = Log.default) () =
  let sv_cache =
    match (cache, cache_dir) with
    | Some _, Some _ -> invalid_arg "Service.create: pass ~cache or ~cache_dir, not both"
    | Some c, None -> c
    | None, Some dir -> Build.create_cache ~dir ?max_bytes ?quarantine ~telemetry ()
    | None, None -> Build.create_cache ~telemetry ()
  in
  let fp = match fp with Some fp -> fp | None -> Fp.u50 () in
  let t =
    {
      mu = Mutex.create ();
      cond = Condition.create ();
      sv_cache;
      ro_cache = Build.readonly_view sv_cache;
      fp;
      telemetry;
      logger;
      t_started = Unix.gettimeofday ();
      workers;
      jobs;
      pace;
      seed;
      queue_workers = max 1 queue_workers;
      shed;
      watchdog_timeout_s;
      wd_tick_s = watchdog_tick_s;
      faults;
      dq = default_quota;
      tenants = Hashtbl.create 16;
      pending = [];
      inflight = Hashtbl.create 64;
      running = Hashtbl.create 16;
      first_tenant = Hashtbl.create 64;
      next_id = 0;
      stopping = false;
      draining = false;
      pool = [];
      wd_domain = None;
      avg_build_s =
        (match shed with Some sp -> sp.sp_assumed_build_s | None -> 0.05);
      g_submitted = 0;
      g_completed = 0;
      g_failed = 0;
      g_rejected = 0;
      g_shed = 0;
      g_deadline = 0;
      g_lost = 0;
      g_wd_kills = 0;
      g_deduped = 0;
      g_cross = 0;
      g_latencies = [];
    }
  in
  List.iter
    (fun (name, quota) ->
      let tn = tenant_of t name in
      Hashtbl.replace t.tenants name { tn with tn_quota = quota })
    quotas;
  t.pool <- List.init t.queue_workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t.wd_domain <- Some (Domain.spawn (fun () -> watchdog_loop t));
  t

let cache t = t.sv_cache

(* Fabric profiles live in the shared artifact cache under the same
   key the build dedups on, so a cross-tenant or warm-cache hit finds
   the profile of whichever run actually produced the artifact. *)
let profile_key g level = job_key g level
let find_profile t g level = Build.find_profile t.sv_cache ~key:(job_key g level)
let put_profile t g level doc = Build.put_profile t.sv_cache ~key:(job_key g level) doc

let submit t ~tenant ?(priority = 0) ?(level = Build.O1) ?deadline_ms ?trace_id g =
  let trace = match trace_id with Some id -> id | None -> Log.mint_trace_id () in
  (* The admission verdict is an instant on the request's trace —
     recorded for refusals too, so a shed or queue-full request still
     leaves a traceable mark. *)
  let verdict_instant name extra =
    T.instant t.telemetry ~cat:"service"
      ~attrs:([ ("trace", trace); ("tenant", tenant) ] @ extra)
      name
  in
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  let tn = tenant_of t tenant in
  if t.stopping || t.draining then begin
    tn.tn_rejected <- tn.tn_rejected + 1;
    t.g_rejected <- t.g_rejected + 1;
    bump t "rejected";
    verdict_instant "admission.reject" [ ("state", "DRAINING") ];
    Error (Draining (if t.stopping then "service is shutting down" else "service is draining"))
  end
  else begin
    let key = job_key g level in
    let mk () =
      t.next_id <- t.next_id + 1;
      let now = Unix.gettimeofday () in
      {
        j_id = t.next_id;
        j_tenant = tenant;
        j_priority = priority;
        j_graph = g;
        j_level = level;
        j_key = key;
        j_trace = trace;
        j_enqueued = now;
        j_deadline = Option.map (fun ms -> now +. (float_of_int ms /. 1000.0)) deadline_ms;
        j_started = 0.0;
        j_abandoned = false;
        j_state = Queued;
        j_followers = [];
      }
    in
    match Hashtbl.find_opt t.inflight key with
    | Some primary ->
        (* Identical request already queued or compiling: piggyback.
           The primary's deadline governs the build; a follower's own
           deadline still bounds its await. *)
        let j = mk () in
        primary.j_followers <- j :: primary.j_followers;
        tn.tn_submitted <- tn.tn_submitted + 1;
        t.g_submitted <- t.g_submitted + 1;
        bump t "submitted";
        verdict_instant "dedup.join" [ ("primary_trace", primary.j_trace) ];
        Log.debug t.logger ~trace
          ~fields:[ ("tenant", tenant); ("primary_trace", primary.j_trace) ]
          ~sub:"service.dedup" "joined in-flight build";
        Ok j
    | None ->
        if tn.tn_queued >= tn.tn_quota.max_queued then begin
          tn.tn_rejected <- tn.tn_rejected + 1;
          t.g_rejected <- t.g_rejected + 1;
          bump t "rejected";
          verdict_instant "admission.reject" [ ("state", "QUEUE_FULL") ];
          Log.warn t.logger ~trace
            ~fields:[ ("tenant", tenant); ("queued", string_of_int tn.tn_queued) ]
            ~sub:"service.queue" "queue full";
          Error (Queue_full { tenant; queued = tn.tn_queued; max_queued = tn.tn_quota.max_queued })
        end
        else begin
          let shed =
            match t.shed with
            | Some sp when priority < sp.sp_exempt_priority ->
                let est = queue_delay_estimate t ~priority in
                if est > sp.sp_max_delay_s then
                  Some
                    (Shed
                       {
                         retry_after_ms =
                           max 1 (int_of_float ((est -. sp.sp_max_delay_s) *. 1000.0));
                         reason =
                           Printf.sprintf "estimated queue delay %.2fs exceeds %.2fs budget" est
                             sp.sp_max_delay_s;
                       })
                else None
            | Some _ | None -> None
          in
          match shed with
          | Some rej ->
              t.g_shed <- t.g_shed + 1;
              bump t "shed";
              verdict_instant "admission.reject" [ ("state", "SHED") ];
              Log.warn t.logger ~trace
                ~fields:[ ("tenant", tenant) ]
                ~sub:"service.queue" (reject_message rej);
              Error rej
          | None ->
              let j = mk () in
              Hashtbl.replace t.inflight key j;
              if not (Hashtbl.mem t.first_tenant key) then Hashtbl.replace t.first_tenant key tenant;
              t.pending <- t.pending @ [ j ];
              tn.tn_queued <- tn.tn_queued + 1;
              tn.tn_submitted <- tn.tn_submitted + 1;
              t.g_submitted <- t.g_submitted + 1;
              bump t "submitted";
              verdict_instant "admission.admit" [];
              Log.debug t.logger ~trace
                ~fields:
                  [
                    ("tenant", tenant);
                    ("graph", g.Graph.graph_name);
                    ("level", Build.level_name level);
                  ]
                ~sub:"service.queue" "admitted";
              set_depth_gauges t;
              Condition.broadcast t.cond;
              Ok j
        end
  end

(* Slack past a job's own deadline before an un-timed await gives up:
   wide enough that the deadline machinery (which fires within a
   watchdog tick) always wins, so this bound only trips if the job was
   truly lost. *)
let await_grace_s = 30.0

let await ?timeout_s t (j : ticket) =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  let bound =
    match timeout_s with
    | Some s -> Some (Unix.gettimeofday () +. s)
    | None -> Option.map (fun d -> d +. await_grace_s) j.j_deadline
  in
  (* The watchdog broadcasts every tick, so this wait re-checks its
     bound at tick granularity — a deadline-aware wait built on an
     untimed Condition. *)
  let rec wait () =
    match j.j_state with
    | Finished r -> r
    | Queued | Running -> (
        match bound with
        | Some b when Unix.gettimeofday () > b ->
            Error (Lost "await: timed out waiting for the job")
        | _ ->
            Condition.wait t.cond t.mu;
            wait ())
  in
  wait ()

let compile t ~tenant ?priority ?level ?deadline_ms ?trace_id g =
  match submit t ~tenant ?priority ?level ?deadline_ms ?trace_id g with
  | Error e -> Error e
  | Ok ticket -> await t ticket

let draining t =
  Mutex.lock t.mu;
  let d = t.draining || t.stopping in
  Mutex.unlock t.mu;
  d

(* ---------- stats ---------- *)

type tenant_stats = {
  ts_tenant : string;
  ts_submitted : int;
  ts_completed : int;
  ts_failed : int;
  ts_rejected : int;
  ts_deduped : int;
  ts_cross_hits : int;
  ts_store_writes : int;
  ts_queued : int;
  ts_in_flight : int;
}

type stats = {
  st_submitted : int;
  st_completed : int;
  st_failed : int;
  st_rejected : int;
  st_shed : int;
  st_deadline_exceeded : int;
  st_lost : int;
  st_watchdog_kills : int;
  st_deduped : int;
  st_cross_hits : int;
  st_queue_depth : int;
  st_in_flight : int;
  st_latencies : float list;
  st_tenants : tenant_stats list;
  st_store : Pld_engine.Store.stats option;
}

let stats t =
  Mutex.lock t.mu;
  let tenants =
    Hashtbl.fold
      (fun _ tn acc ->
        {
          ts_tenant = tn.tn_name;
          ts_submitted = tn.tn_submitted;
          ts_completed = tn.tn_completed;
          ts_failed = tn.tn_failed;
          ts_rejected = tn.tn_rejected;
          ts_deduped = tn.tn_deduped;
          ts_cross_hits = tn.tn_cross_hits;
          ts_store_writes = tn.tn_store_writes;
          ts_queued = tn.tn_queued;
          ts_in_flight = tn.tn_in_flight;
        }
        :: acc)
      t.tenants []
  in
  let st =
    {
      st_submitted = t.g_submitted;
      st_completed = t.g_completed;
      st_failed = t.g_failed;
      st_rejected = t.g_rejected;
      st_shed = t.g_shed;
      st_deadline_exceeded = t.g_deadline;
      st_lost = t.g_lost;
      st_watchdog_kills = t.g_wd_kills;
      st_deduped = t.g_deduped;
      st_cross_hits = t.g_cross;
      st_queue_depth = List.length t.pending;
      st_in_flight = Hashtbl.fold (fun _ tn acc -> acc + tn.tn_in_flight) t.tenants 0;
      st_latencies = List.rev t.g_latencies;
      st_tenants = List.sort (fun a b -> compare a.ts_tenant b.ts_tenant) tenants;
      st_store = Option.map Pld_engine.Store.stats (Build.cache_store t.sv_cache);
    }
  in
  Mutex.unlock t.mu;
  st

let percentile = Quantile.of_samples

let stats_json (s : stats) =
  let tenant_json ts =
    Json.Obj
      [
        ("tenant", Json.String ts.ts_tenant);
        ("submitted", Json.Int ts.ts_submitted);
        ("completed", Json.Int ts.ts_completed);
        ("failed", Json.Int ts.ts_failed);
        ("rejected", Json.Int ts.ts_rejected);
        ("deduped", Json.Int ts.ts_deduped);
        ("cross_tenant_hits", Json.Int ts.ts_cross_hits);
        ("store_writes", Json.Int ts.ts_store_writes);
        ("queued", Json.Int ts.ts_queued);
        ("in_flight", Json.Int ts.ts_in_flight);
      ]
  in
  let store_json (ss : Pld_engine.Store.stats) =
    Json.Obj
      [
        ("entries", Json.Int ss.Pld_engine.Store.s_entries);
        ("bytes", Json.Int ss.Pld_engine.Store.s_bytes);
        ( "kinds",
          Json.List
            (List.map
               (fun (k : Pld_engine.Store.kind_stats) ->
                 Json.Obj
                   [
                     ("kind", Json.String k.Pld_engine.Store.ks_kind);
                     ("entries", Json.Int k.Pld_engine.Store.ks_entries);
                     ("bytes", Json.Int k.Pld_engine.Store.ks_bytes);
                     ("hits", Json.Int k.Pld_engine.Store.ks_hits);
                     ("misses", Json.Int k.Pld_engine.Store.ks_misses);
                     ("puts", Json.Int k.Pld_engine.Store.ks_puts);
                     ("evictions", Json.Int k.Pld_engine.Store.ks_evictions);
                   ])
               ss.Pld_engine.Store.s_kinds) );
      ]
  in
  Json.Obj
    [
      ("submitted", Json.Int s.st_submitted);
      ("completed", Json.Int s.st_completed);
      ("failed", Json.Int s.st_failed);
      ("rejected", Json.Int s.st_rejected);
      ("shed", Json.Int s.st_shed);
      ("deadline_exceeded", Json.Int s.st_deadline_exceeded);
      ("lost", Json.Int s.st_lost);
      ("watchdog_kills", Json.Int s.st_watchdog_kills);
      ("deduped", Json.Int s.st_deduped);
      ("cross_tenant_hits", Json.Int s.st_cross_hits);
      ("queue_depth", Json.Int s.st_queue_depth);
      ("in_flight", Json.Int s.st_in_flight);
      ("latency_p50_s", Json.Float (percentile s.st_latencies 0.50));
      ("latency_p95_s", Json.Float (percentile s.st_latencies 0.95));
      ("latency_p99_s", Json.Float (percentile s.st_latencies 0.99));
      ("tenants", Json.List (List.map tenant_json s.st_tenants));
      ("store", match s.st_store with Some ss -> store_json ss | None -> Json.Null);
    ]

(* ---------- live introspection (Status / Health admin verbs) ---------- *)

let status_json t =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  let now = Unix.gettimeofday () in
  let tenant_json tn =
    let buckets = Quantile.buckets_of_counts ~edges:latency_edges ~counts:tn.tn_lat_counts in
    let count = Array.fold_left ( + ) 0 tn.tn_lat_counts in
    Json.Obj
      [
        ("tenant", Json.String tn.tn_name);
        ("queued", Json.Int tn.tn_queued);
        ("max_queued", Json.Int tn.tn_quota.max_queued);
        ("in_flight", Json.Int tn.tn_in_flight);
        ("max_in_flight", Json.Int tn.tn_quota.max_in_flight);
        ("submitted", Json.Int tn.tn_submitted);
        ("completed", Json.Int tn.tn_completed);
        ("failed", Json.Int tn.tn_failed);
        ("rejected", Json.Int tn.tn_rejected);
        ("deduped", Json.Int tn.tn_deduped);
        ( "latency",
          Json.Obj
            [
              ("count", Json.Int count);
              ("p50_s", Json.Float (Quantile.of_buckets buckets 0.50));
              ("p95_s", Json.Float (Quantile.of_buckets buckets 0.95));
              ("p99_s", Json.Float (Quantile.of_buckets buckets 0.99));
            ] );
      ]
  in
  let tenants =
    Hashtbl.fold (fun _ tn acc -> tn :: acc) t.tenants []
    |> List.sort (fun a b -> compare a.tn_name b.tn_name)
    |> List.map tenant_json
  in
  let builds =
    Hashtbl.fold (fun _ j acc -> j :: acc) t.running []
    |> List.sort (fun a b -> compare a.j_id b.j_id)
    |> List.map (fun j ->
           Json.Obj
             [
               ("id", Json.Int j.j_id);
               ("tenant", Json.String j.j_tenant);
               ("graph", Json.String j.j_graph.Graph.graph_name);
               ("level", Json.String (Build.level_name j.j_level));
               ("age_s", Json.Float (now -. j.j_started));
               ("trace", Json.String j.j_trace);
             ])
  in
  let state =
    if t.stopping then "stopping" else if t.draining then "draining" else "running"
  in
  Json.Obj
    [
      ("uptime_s", Json.Float (now -. t.t_started));
      ("state", Json.String state);
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int (List.length t.pending));
            ("in_flight", Json.Int (Hashtbl.length t.running));
            ("workers", Json.Int t.queue_workers);
            ("avg_build_s", Json.Float t.avg_build_s);
          ] );
      ( "counters",
        Json.Obj
          [
            ("submitted", Json.Int t.g_submitted);
            ("completed", Json.Int t.g_completed);
            ("failed", Json.Int t.g_failed);
            ("rejected", Json.Int t.g_rejected);
            ("shed", Json.Int t.g_shed);
            ("deadline_exceeded", Json.Int t.g_deadline);
            ("lost", Json.Int t.g_lost);
            ("watchdog_kills", Json.Int t.g_wd_kills);
            ("deduped", Json.Int t.g_deduped);
            ("cross_tenant_hits", Json.Int t.g_cross);
          ] );
      ("tenants", Json.List tenants);
      ("builds", Json.List builds);
    ]

let health_json t =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  let state =
    if t.stopping then "stopping" else if t.draining then "draining" else "running"
  in
  Json.Obj
    [
      ("ok", Json.Bool (not (t.stopping || t.draining)));
      ("state", Json.String state);
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.t_started));
      ("queue_depth", Json.Int (List.length t.pending));
      ("in_flight", Json.Int (Hashtbl.length t.running));
    ]

let render_stats (s : stats) =
  let head =
    Printf.sprintf
      "service: %d submitted, %d completed (%d dedup, %d cross-tenant), %d failed, %d rejected, \
       %d shed, %d deadline-exceeded, %d lost (%d watchdog kills)"
      s.st_submitted s.st_completed s.st_deduped s.st_cross_hits s.st_failed s.st_rejected
      s.st_shed s.st_deadline_exceeded s.st_lost s.st_watchdog_kills
  in
  let lat =
    Printf.sprintf "latency s: p50 %.4f  p95 %.4f  p99 %.4f  (%d samples)"
      (percentile s.st_latencies 0.50) (percentile s.st_latencies 0.95)
      (percentile s.st_latencies 0.99)
      (List.length s.st_latencies)
  in
  let tenants =
    List.map
      (fun ts ->
        Printf.sprintf "  %-12s %4d done  %3d dedup  %3d cross  %3d rejected  %4d writes"
          ts.ts_tenant ts.ts_completed ts.ts_deduped ts.ts_cross_hits ts.ts_rejected
          ts.ts_store_writes)
      s.st_tenants
  in
  (head :: lat :: tenants)
  @ match s.st_store with Some ss -> Pld_engine.Store.render_stats ss | None -> []

let shutdown t =
  Mutex.lock t.mu;
  if not t.stopping then begin
    t.stopping <- true;
    Log.info t.logger
      ~fields:[ ("orphaned", string_of_int (List.length t.pending)) ]
      ~sub:"service" "shutting down";
    let orphaned = t.pending in
    t.pending <- [];
    List.iter (fun j -> fail_queued t j (Lost "service shut down before the job ran")) orphaned;
    Condition.broadcast t.cond;
    let pool = t.pool in
    t.pool <- [];
    let wd = t.wd_domain in
    t.wd_domain <- None;
    Mutex.unlock t.mu;
    List.iter Domain.join pool;
    Option.iter Domain.join wd
  end
  else Mutex.unlock t.mu

let drain ?(grace_s = 5.0) t =
  Mutex.lock t.mu;
  t.draining <- true;
  let deadline = Unix.gettimeofday () +. grace_s in
  let busy () = t.pending <> [] || Hashtbl.length t.running > 0 in
  (* Woken by job completions and by the watchdog tick, so the grace
     bound is re-checked at tick granularity. *)
  while (not t.stopping) && busy () && Unix.gettimeofday () < deadline do
    Condition.wait t.cond t.mu
  done;
  Mutex.unlock t.mu;
  shutdown t
