open Pld_ir
open Pld_core
module Fp = Pld_fabric.Floorplan
module T = Pld_telemetry.Telemetry
module Json = Pld_telemetry.Json

type quota = { max_in_flight : int; max_queued : int; cache_write_budget : int option }

let default_quota = { max_in_flight = 4; max_queued = 64; cache_write_budget = None }

type outcome = {
  o_tenant : string;
  o_graph : string;
  o_level : Build.level;
  o_cache_hits : int;
  o_recompiled : int;
  o_store_writes : int;
  o_deduped : bool;
  o_cross_tenant : bool;
  o_queue_seconds : float;
  o_build_seconds : float;
  o_latency_seconds : float;
  o_app : Build.app;
}

let outcome_json o =
  Json.Obj
    [
      ("tenant", Json.String o.o_tenant);
      ("graph", Json.String o.o_graph);
      ("level", Json.String (Build.level_name o.o_level));
      ("cache_hits", Json.Int o.o_cache_hits);
      ("recompiled", Json.Int o.o_recompiled);
      ("store_writes", Json.Int o.o_store_writes);
      ("deduped", Json.Bool o.o_deduped);
      ("cross_tenant", Json.Bool o.o_cross_tenant);
      ("queue_seconds", Json.Float o.o_queue_seconds);
      ("build_seconds", Json.Float o.o_build_seconds);
      ("latency_seconds", Json.Float o.o_latency_seconds);
    ]

type job_state = Queued | Running | Finished of (outcome, string) result

type job = {
  j_id : int;
  j_tenant : string;
  j_priority : int;
  j_graph : Graph.t;
  j_level : Build.level;
  j_key : string;
  j_enqueued : float;
  mutable j_state : job_state;
  mutable j_followers : job list;  (* dedup piggybacks, primaries only *)
}

type ticket = job

type tenant = {
  tn_name : string;
  tn_quota : quota;
  mutable tn_queued : int;
  mutable tn_in_flight : int;
  mutable tn_submitted : int;
  mutable tn_completed : int;
  mutable tn_failed : int;
  mutable tn_rejected : int;
  mutable tn_deduped : int;
  mutable tn_cross_hits : int;
  mutable tn_store_writes : int;
}

type t = {
  mu : Mutex.t;
  cond : Condition.t;
  sv_cache : Build.cache;
  ro_cache : Build.cache;  (* readonly view for exhausted write budgets *)
  fp : Fp.t;
  telemetry : T.t;
  workers : int;
  jobs : int;
  pace : float;
  seed : int;
  dq : quota;
  tenants : (string, tenant) Hashtbl.t;
  mutable pending : job list;  (* admission order, newest last *)
  inflight : (string, job) Hashtbl.t;  (* key -> queued/running primary *)
  first_tenant : (string, string) Hashtbl.t;  (* key -> first submitter *)
  mutable next_id : int;
  mutable stopping : bool;
  mutable pool : unit Domain.t list;
  (* global counters *)
  mutable g_submitted : int;
  mutable g_completed : int;
  mutable g_failed : int;
  mutable g_rejected : int;
  mutable g_deduped : int;
  mutable g_cross : int;
  mutable g_latencies : float list;  (* reversed: newest first *)
}

(* Counter handles are re-fetched per bump so a [Telemetry.reset]
   between calls cannot strand a stale handle. *)
let bump t name = T.incr (T.counter t.telemetry ("service." ^ name))

let set_depth_gauges t =
  T.set_gauge (T.gauge t.telemetry "service.queue_depth") (float_of_int (List.length t.pending));
  let in_flight = Hashtbl.fold (fun _ tn acc -> acc + tn.tn_in_flight) t.tenants 0 in
  T.set_gauge (T.gauge t.telemetry "service.in_flight") (float_of_int in_flight)

let tenant_of t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tn -> tn
  | None ->
      let quota = t.dq in
      let tn =
        {
          tn_name = name;
          tn_quota = quota;
          tn_queued = 0;
          tn_in_flight = 0;
          tn_submitted = 0;
          tn_completed = 0;
          tn_failed = 0;
          tn_rejected = 0;
          tn_deduped = 0;
          tn_cross_hits = 0;
          tn_store_writes = 0;
        }
      in
      Hashtbl.replace t.tenants name tn;
      tn

let job_key g level = Pld_util.Digest_lite.of_parts [ Graph.source g; Build.level_name level ]

let store_writes report =
  List.fold_left
    (fun acc ev -> match ev with Pld_engine.Event.Cache_store _ -> acc + 1 | _ -> acc)
    0 report.Build.events

(* ---------- completion ---------- *)

let finish_follower t primary_tenant (result : (outcome, string) result) (f : job) =
  let now = Unix.gettimeofday () in
  let tn = tenant_of t f.j_tenant in
  let result =
    match result with
    | Error e ->
        tn.tn_failed <- tn.tn_failed + 1;
        t.g_failed <- t.g_failed + 1;
        bump t "failed";
        Error e
    | Ok o ->
        let cross = not (String.equal primary_tenant f.j_tenant) in
        tn.tn_completed <- tn.tn_completed + 1;
        tn.tn_deduped <- tn.tn_deduped + 1;
        t.g_completed <- t.g_completed + 1;
        t.g_deduped <- t.g_deduped + 1;
        bump t "completed";
        bump t "dedup_hits";
        if cross then begin
          tn.tn_cross_hits <- tn.tn_cross_hits + 1;
          t.g_cross <- t.g_cross + 1;
          bump t "cross_tenant_hits"
        end;
        let latency = now -. f.j_enqueued in
        t.g_latencies <- latency :: t.g_latencies;
        T.observe (T.histogram t.telemetry "service.latency_seconds") latency;
        Ok
          {
            o with
            o_tenant = f.j_tenant;
            o_cache_hits = 0;
            o_recompiled = 0;
            o_store_writes = 0;
            o_deduped = true;
            o_cross_tenant = cross;
            o_queue_seconds = now -. f.j_enqueued;
            o_build_seconds = 0.0;
            o_latency_seconds = latency;
          }
  in
  f.j_state <- Finished result

(* Must hold t.mu. *)
let finish t (j : job) started result =
  let now = Unix.gettimeofday () in
  let tn = tenant_of t j.j_tenant in
  tn.tn_in_flight <- tn.tn_in_flight - 1;
  Hashtbl.remove t.inflight j.j_key;
  let result =
    match result with
    | Error e ->
        tn.tn_failed <- tn.tn_failed + 1;
        t.g_failed <- t.g_failed + 1;
        bump t "failed";
        Error e
    | Ok (app : Build.app) ->
        let writes = store_writes app.Build.report in
        tn.tn_store_writes <- tn.tn_store_writes + writes;
        let cross =
          app.Build.report.Build.recompiled = 0
          &&
          match Hashtbl.find_opt t.first_tenant j.j_key with
          | Some first -> not (String.equal first j.j_tenant)
          | None -> false
        in
        tn.tn_completed <- tn.tn_completed + 1;
        t.g_completed <- t.g_completed + 1;
        bump t "completed";
        if cross then begin
          tn.tn_cross_hits <- tn.tn_cross_hits + 1;
          t.g_cross <- t.g_cross + 1;
          bump t "cross_tenant_hits"
        end;
        let latency = now -. j.j_enqueued in
        t.g_latencies <- latency :: t.g_latencies;
        T.observe (T.histogram t.telemetry "service.latency_seconds") latency;
        Ok
          {
            o_tenant = j.j_tenant;
            o_graph = j.j_graph.Graph.graph_name;
            o_level = j.j_level;
            o_cache_hits = app.Build.report.Build.cache_hits;
            o_recompiled = app.Build.report.Build.recompiled;
            o_store_writes = writes;
            o_deduped = false;
            o_cross_tenant = cross;
            o_queue_seconds = started -. j.j_enqueued;
            o_build_seconds = now -. started;
            o_latency_seconds = latency;
            o_app = app;
          }
  in
  j.j_state <- Finished result;
  List.iter (finish_follower t j.j_tenant result) (List.rev j.j_followers);
  j.j_followers <- [];
  set_depth_gauges t;
  Condition.broadcast t.cond

(* ---------- scheduling ---------- *)

(* Highest priority first, FIFO within a priority, skipping tenants at
   their in-flight limit. Must hold t.mu. *)
let select t =
  let eligible j =
    let tn = tenant_of t j.j_tenant in
    tn.tn_in_flight < tn.tn_quota.max_in_flight
  in
  List.fold_left
    (fun acc j ->
      if not (eligible j) then acc
      else
        match acc with
        | Some b when b.j_priority >= j.j_priority -> acc (* earlier admission wins ties *)
        | Some _ | None -> Some j)
    None t.pending

let cache_for t tn =
  match tn.tn_quota.cache_write_budget with
  | Some budget when tn.tn_store_writes >= budget -> t.ro_cache
  | Some _ | None -> t.sv_cache

let run_job t (j : job) =
  let tn = tenant_of t j.j_tenant in
  let cache = cache_for t tn in
  let started = Unix.gettimeofday () in
  Mutex.unlock t.mu;
  let result =
    try
      Ok
        (Build.compile ~cache ~workers:t.workers ~jobs:t.jobs ~pace:t.pace ~seed:t.seed
           ~telemetry:t.telemetry t.fp j.j_graph ~level:j.j_level)
    with e -> Error (Printexc.to_string e)
  in
  Mutex.lock t.mu;
  finish t j started result

let rec worker_loop t =
  let job =
    let rec pick () =
      if t.stopping then None
      else
        match select t with
        | Some j ->
            t.pending <- List.filter (fun p -> p.j_id <> j.j_id) t.pending;
            j.j_state <- Running;
            let tn = tenant_of t j.j_tenant in
            tn.tn_queued <- tn.tn_queued - 1;
            tn.tn_in_flight <- tn.tn_in_flight + 1;
            set_depth_gauges t;
            Some j
        | None ->
            Condition.wait t.cond t.mu;
            pick ()
    in
    Mutex.lock t.mu;
    pick ()
  in
  match job with
  | None -> Mutex.unlock t.mu
  | Some j ->
      run_job t j;
      Mutex.unlock t.mu;
      worker_loop t

(* ---------- public API ---------- *)

let create ?cache ?cache_dir ?max_bytes ?fp ?(queue_workers = 2) ?(workers = 22) ?(jobs = 1)
    ?(pace = 0.0) ?(seed = 7) ?(default_quota = default_quota) ?(quotas = [])
    ?(telemetry = T.default) () =
  let sv_cache =
    match (cache, cache_dir) with
    | Some _, Some _ -> invalid_arg "Service.create: pass ~cache or ~cache_dir, not both"
    | Some c, None -> c
    | None, Some dir -> Build.create_cache ~dir ?max_bytes ~telemetry ()
    | None, None -> Build.create_cache ~telemetry ()
  in
  let fp = match fp with Some fp -> fp | None -> Fp.u50 () in
  let t =
    {
      mu = Mutex.create ();
      cond = Condition.create ();
      sv_cache;
      ro_cache = Build.readonly_view sv_cache;
      fp;
      telemetry;
      workers;
      jobs;
      pace;
      seed;
      dq = default_quota;
      tenants = Hashtbl.create 16;
      pending = [];
      inflight = Hashtbl.create 64;
      first_tenant = Hashtbl.create 64;
      next_id = 0;
      stopping = false;
      pool = [];
      g_submitted = 0;
      g_completed = 0;
      g_failed = 0;
      g_rejected = 0;
      g_deduped = 0;
      g_cross = 0;
      g_latencies = [];
    }
  in
  List.iter
    (fun (name, quota) ->
      let tn = tenant_of t name in
      Hashtbl.replace t.tenants name { tn with tn_quota = quota })
    quotas;
  let n = max 1 queue_workers in
  t.pool <- List.init n (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let cache t = t.sv_cache

let submit t ~tenant ?(priority = 0) ?(level = Build.O1) g =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  if t.stopping then Error "service is shutting down"
  else begin
    let tn = tenant_of t tenant in
    let key = job_key g level in
    let mk () =
      t.next_id <- t.next_id + 1;
      {
        j_id = t.next_id;
        j_tenant = tenant;
        j_priority = priority;
        j_graph = g;
        j_level = level;
        j_key = key;
        j_enqueued = Unix.gettimeofday ();
        j_state = Queued;
        j_followers = [];
      }
    in
    match Hashtbl.find_opt t.inflight key with
    | Some primary ->
        (* Identical request already queued or compiling: piggyback. *)
        let j = mk () in
        primary.j_followers <- j :: primary.j_followers;
        tn.tn_submitted <- tn.tn_submitted + 1;
        t.g_submitted <- t.g_submitted + 1;
        bump t "submitted";
        Ok j
    | None ->
        if tn.tn_queued >= tn.tn_quota.max_queued then begin
          tn.tn_rejected <- tn.tn_rejected + 1;
          t.g_rejected <- t.g_rejected + 1;
          bump t "rejected";
          Error
            (Printf.sprintf "tenant %s: queue full (%d admitted, max %d)" tenant tn.tn_queued
               tn.tn_quota.max_queued)
        end
        else begin
          let j = mk () in
          Hashtbl.replace t.inflight key j;
          if not (Hashtbl.mem t.first_tenant key) then Hashtbl.replace t.first_tenant key tenant;
          t.pending <- t.pending @ [ j ];
          tn.tn_queued <- tn.tn_queued + 1;
          tn.tn_submitted <- tn.tn_submitted + 1;
          t.g_submitted <- t.g_submitted + 1;
          bump t "submitted";
          set_depth_gauges t;
          Condition.broadcast t.cond;
          Ok j
        end
  end

let await t (j : ticket) =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  let rec wait () =
    match j.j_state with Finished r -> r | Queued | Running -> Condition.wait t.cond t.mu; wait ()
  in
  wait ()

let compile t ~tenant ?priority ?level g =
  match submit t ~tenant ?priority ?level g with Error e -> Error e | Ok ticket -> await t ticket

(* ---------- stats ---------- *)

type tenant_stats = {
  ts_tenant : string;
  ts_submitted : int;
  ts_completed : int;
  ts_failed : int;
  ts_rejected : int;
  ts_deduped : int;
  ts_cross_hits : int;
  ts_store_writes : int;
  ts_queued : int;
  ts_in_flight : int;
}

type stats = {
  st_submitted : int;
  st_completed : int;
  st_failed : int;
  st_rejected : int;
  st_deduped : int;
  st_cross_hits : int;
  st_queue_depth : int;
  st_in_flight : int;
  st_latencies : float list;
  st_tenants : tenant_stats list;
  st_store : Pld_engine.Store.stats option;
}

let stats t =
  Mutex.lock t.mu;
  let tenants =
    Hashtbl.fold
      (fun _ tn acc ->
        {
          ts_tenant = tn.tn_name;
          ts_submitted = tn.tn_submitted;
          ts_completed = tn.tn_completed;
          ts_failed = tn.tn_failed;
          ts_rejected = tn.tn_rejected;
          ts_deduped = tn.tn_deduped;
          ts_cross_hits = tn.tn_cross_hits;
          ts_store_writes = tn.tn_store_writes;
          ts_queued = tn.tn_queued;
          ts_in_flight = tn.tn_in_flight;
        }
        :: acc)
      t.tenants []
  in
  let st =
    {
      st_submitted = t.g_submitted;
      st_completed = t.g_completed;
      st_failed = t.g_failed;
      st_rejected = t.g_rejected;
      st_deduped = t.g_deduped;
      st_cross_hits = t.g_cross;
      st_queue_depth = List.length t.pending;
      st_in_flight = Hashtbl.fold (fun _ tn acc -> acc + tn.tn_in_flight) t.tenants 0;
      st_latencies = List.rev t.g_latencies;
      st_tenants = List.sort (fun a b -> compare a.ts_tenant b.ts_tenant) tenants;
      st_store = Option.map Pld_engine.Store.stats (Build.cache_store t.sv_cache);
    }
  in
  Mutex.unlock t.mu;
  st

let percentile samples q =
  match samples with
  | [] -> 0.0
  | _ ->
      let a = Array.of_list samples in
      Array.sort compare a;
      let n = Array.length a in
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      a.(max 0 (min (n - 1) (rank - 1)))

let stats_json (s : stats) =
  let tenant_json ts =
    Json.Obj
      [
        ("tenant", Json.String ts.ts_tenant);
        ("submitted", Json.Int ts.ts_submitted);
        ("completed", Json.Int ts.ts_completed);
        ("failed", Json.Int ts.ts_failed);
        ("rejected", Json.Int ts.ts_rejected);
        ("deduped", Json.Int ts.ts_deduped);
        ("cross_tenant_hits", Json.Int ts.ts_cross_hits);
        ("store_writes", Json.Int ts.ts_store_writes);
        ("queued", Json.Int ts.ts_queued);
        ("in_flight", Json.Int ts.ts_in_flight);
      ]
  in
  let store_json (ss : Pld_engine.Store.stats) =
    Json.Obj
      [
        ("entries", Json.Int ss.Pld_engine.Store.s_entries);
        ("bytes", Json.Int ss.Pld_engine.Store.s_bytes);
        ( "kinds",
          Json.List
            (List.map
               (fun (k : Pld_engine.Store.kind_stats) ->
                 Json.Obj
                   [
                     ("kind", Json.String k.Pld_engine.Store.ks_kind);
                     ("entries", Json.Int k.Pld_engine.Store.ks_entries);
                     ("bytes", Json.Int k.Pld_engine.Store.ks_bytes);
                     ("hits", Json.Int k.Pld_engine.Store.ks_hits);
                     ("misses", Json.Int k.Pld_engine.Store.ks_misses);
                     ("puts", Json.Int k.Pld_engine.Store.ks_puts);
                     ("evictions", Json.Int k.Pld_engine.Store.ks_evictions);
                   ])
               ss.Pld_engine.Store.s_kinds) );
      ]
  in
  Json.Obj
    [
      ("submitted", Json.Int s.st_submitted);
      ("completed", Json.Int s.st_completed);
      ("failed", Json.Int s.st_failed);
      ("rejected", Json.Int s.st_rejected);
      ("deduped", Json.Int s.st_deduped);
      ("cross_tenant_hits", Json.Int s.st_cross_hits);
      ("queue_depth", Json.Int s.st_queue_depth);
      ("in_flight", Json.Int s.st_in_flight);
      ("latency_p50_s", Json.Float (percentile s.st_latencies 0.50));
      ("latency_p95_s", Json.Float (percentile s.st_latencies 0.95));
      ("latency_p99_s", Json.Float (percentile s.st_latencies 0.99));
      ("tenants", Json.List (List.map tenant_json s.st_tenants));
      ("store", match s.st_store with Some ss -> store_json ss | None -> Json.Null);
    ]

let render_stats (s : stats) =
  let head =
    Printf.sprintf
      "service: %d submitted, %d completed (%d dedup, %d cross-tenant), %d failed, %d rejected"
      s.st_submitted s.st_completed s.st_deduped s.st_cross_hits s.st_failed s.st_rejected
  in
  let lat =
    Printf.sprintf "latency s: p50 %.4f  p95 %.4f  p99 %.4f  (%d samples)"
      (percentile s.st_latencies 0.50) (percentile s.st_latencies 0.95)
      (percentile s.st_latencies 0.99)
      (List.length s.st_latencies)
  in
  let tenants =
    List.map
      (fun ts ->
        Printf.sprintf "  %-12s %4d done  %3d dedup  %3d cross  %3d rejected  %4d writes"
          ts.ts_tenant ts.ts_completed ts.ts_deduped ts.ts_cross_hits ts.ts_rejected
          ts.ts_store_writes)
      s.st_tenants
  in
  (head :: lat :: tenants)
  @ match s.st_store with Some ss -> Pld_engine.Store.render_stats ss | None -> []

let shutdown t =
  Mutex.lock t.mu;
  if not t.stopping then begin
    t.stopping <- true;
    let orphaned = t.pending in
    t.pending <- [];
    List.iter
      (fun j ->
        let tn = tenant_of t j.j_tenant in
        tn.tn_queued <- tn.tn_queued - 1;
        tn.tn_failed <- tn.tn_failed + 1;
        t.g_failed <- t.g_failed + 1;
        Hashtbl.remove t.inflight j.j_key;
        let r = Error "service shut down before the job ran" in
        j.j_state <- Finished r;
        List.iter (fun f -> f.j_state <- Finished r) (List.rev j.j_followers);
        j.j_followers <- [])
      orphaned;
    Condition.broadcast t.cond;
    let pool = t.pool in
    t.pool <- [];
    Mutex.unlock t.mu;
    List.iter Domain.join pool
  end
  else Mutex.unlock t.mu
