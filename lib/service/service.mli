(** Compile-as-a-service: a multi-tenant request queue in front of the
    shared artifact store.

    The service owns one {!Pld_core.Build.cache} (optionally backed by
    a persistent {!Pld_engine.Store}) and a pool of worker domains.
    Tenants submit compile requests; admission control bounds each
    tenant's queue, a FIFO-with-priority scheduler hands admitted jobs
    to the workers, and identical in-flight requests are deduplicated —
    the second tenant asking for a graph that is already queued or
    compiling piggybacks on the first build instead of re-running it.
    Requests that arrive after a build finished still win via the
    shared cache: every operator is a link-time hit, so nothing is
    re-synthesized. Both paths are visible in {!outcome} and {!stats}
    as dedup and cross-tenant hit counts — the cache economics the
    daemon and [bench service] report.

    Thread-safety: every function on {!t} may be called from any
    domain. *)

open Pld_ir
open Pld_core

type quota = {
  max_in_flight : int;  (** concurrent running jobs per tenant *)
  max_queued : int;  (** admitted-but-not-running jobs per tenant *)
  cache_write_budget : int option;
      (** store writes the tenant may cause; once spent, its builds run
          against {!Build.readonly_view} (reads still shared). [None]
          is unlimited. *)
}

val default_quota : quota
(** 4 in flight, 64 queued, unlimited writes. *)

type t

val create :
  ?cache:Build.cache ->
  ?cache_dir:string ->
  ?max_bytes:int ->
  ?fp:Pld_fabric.Floorplan.t ->
  ?queue_workers:int ->
  ?workers:int ->
  ?jobs:int ->
  ?pace:float ->
  ?seed:int ->
  ?default_quota:quota ->
  ?quotas:(string * quota) list ->
  ?telemetry:Pld_telemetry.Telemetry.t ->
  unit ->
  t
(** Start the service: [queue_workers] (default 2) domains begin
    pulling jobs immediately. [cache] shares an existing cache;
    [cache_dir] opens a persistent one with LRU budget [max_bytes]
    (passing both [cache] and [cache_dir] raises [Invalid_argument]);
    with neither the service is in-memory only. [fp] (default U50),
    [workers]/[jobs]/[pace]/[seed] are the compile parameters every
    job runs with — a fixed seed is what makes equal graphs hit equal
    cache keys across tenants. [quotas] pre-registers per-tenant
    quotas; unknown tenants get [default_quota]. *)

type outcome = {
  o_tenant : string;
  o_graph : string;
  o_level : Build.level;
  o_cache_hits : int;
  o_recompiled : int;
  o_store_writes : int;  (** store puts this build caused *)
  o_deduped : bool;  (** piggybacked on an identical in-flight job *)
  o_cross_tenant : bool;
      (** served from another tenant's work: deduped onto it, or
          recompiled nothing because it was already in the cache *)
  o_queue_seconds : float;  (** admission to dispatch *)
  o_build_seconds : float;  (** dispatch to completion *)
  o_latency_seconds : float;  (** admission to completion *)
  o_app : Build.app;
}

val outcome_json : outcome -> Pld_telemetry.Json.t
(** Everything except [o_app] — what the daemon sends back. *)

type ticket

val submit :
  t -> tenant:string -> ?priority:int -> ?level:Build.level -> Graph.t -> (ticket, string) result
(** Enqueue a compile request. Higher [priority] (default 0) is served
    first; equal priorities are FIFO. Admission fails — and counts as a
    rejection — when the tenant already has [max_queued] admitted jobs
    waiting or the service is shutting down. A request identical to an
    in-flight one (same graph source and level) is always admitted: it
    consumes no queue slot and no worker, it just waits for the primary
    build. *)

val await : t -> ticket -> (outcome, string) result
(** Block until the ticket's job finishes (or is failed by
    {!shutdown}). May be called from any domain, repeatedly. *)

val compile :
  t -> tenant:string -> ?priority:int -> ?level:Build.level -> Graph.t -> (outcome, string) result
(** [submit] then [await]. *)

type tenant_stats = {
  ts_tenant : string;
  ts_submitted : int;
  ts_completed : int;
  ts_failed : int;
  ts_rejected : int;
  ts_deduped : int;
  ts_cross_hits : int;
  ts_store_writes : int;
  ts_queued : int;  (** snapshot: admitted, waiting *)
  ts_in_flight : int;  (** snapshot: running *)
}

type stats = {
  st_submitted : int;
  st_completed : int;
  st_failed : int;
  st_rejected : int;
  st_deduped : int;
  st_cross_hits : int;
  st_queue_depth : int;
  st_in_flight : int;
  st_latencies : float list;  (** seconds, completion order *)
  st_tenants : tenant_stats list;  (** sorted by tenant name *)
  st_store : Pld_engine.Store.stats option;
}

val stats : t -> stats

val percentile : float list -> float -> float
(** [percentile samples q] with [q] in [0,1] — nearest-rank on a sorted
    copy; 0 for an empty list. *)

val stats_json : stats -> Pld_telemetry.Json.t
val render_stats : stats -> string list

val cache : t -> Build.cache
(** The shared cache (the full-write view). *)

val shutdown : t -> unit
(** Stop accepting work, fail every still-queued job with an error,
    let running builds finish, and join the worker domains.
    Idempotent. *)
