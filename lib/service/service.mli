(** Compile-as-a-service: a multi-tenant request queue in front of the
    shared artifact store.

    The service owns one {!Pld_core.Build.cache} (optionally backed by
    a persistent {!Pld_engine.Store}) and a pool of worker domains.
    Tenants submit compile requests; admission control bounds each
    tenant's queue, a FIFO-with-priority scheduler hands admitted jobs
    to the workers, and identical in-flight requests are deduplicated —
    the second tenant asking for a graph that is already queued or
    compiling piggybacks on the first build instead of re-running it.
    Requests that arrive after a build finished still win via the
    shared cache: every operator is a link-time hit, so nothing is
    re-synthesized. Both paths are visible in {!outcome} and {!stats}
    as dedup and cross-tenant hit counts — the cache economics the
    daemon and [bench service] report.

    Thread-safety: every function on {!t} may be called from any
    domain. *)

open Pld_ir
open Pld_core

type quota = {
  max_in_flight : int;  (** concurrent running jobs per tenant *)
  max_queued : int;  (** admitted-but-not-running jobs per tenant *)
  cache_write_budget : int option;
      (** store writes the tenant may cause; once spent, its builds run
          against {!Build.readonly_view} (reads still shared). [None]
          is unlimited. *)
}

val default_quota : quota
(** 4 in flight, 64 queued, unlimited writes. *)

(** Structured refusals and failures. Admission refusals ([Queue_full],
    [Shed], [Draining]) are returned by {!submit} and never become job
    states; terminal job errors ([Deadline_exceeded], [Lost],
    [Build_failed]) come back from {!await}. Each class has its own
    counter in {!stats}, so issued requests are conserved:
    [submitted = completed + failed + deadline_exceeded + lost +
    queued + in_flight]. *)
type reject =
  | Queue_full of { tenant : string; queued : int; max_queued : int }
  | Shed of { retry_after_ms : int; reason : string }
      (** Load shedding: the estimated queue delay exceeded the shed
          policy's budget. [retry_after_ms] hints when to come back. *)
  | Deadline_exceeded of { stage : string; overrun_ms : int }
      (** The request's [deadline_ms] passed while [stage] (["queued"]
          or ["build"]). Mid-build expiry fires at the next tool-phase
          boundary. *)
  | Draining of string  (** the service is draining or shut down *)
  | Lost of string
      (** the build was written off: watchdog kill, shutdown orphan, or
          an {!await} bound expired *)
  | Build_failed of string  (** the compile itself raised *)

val reject_message : reject -> string

val reject_state : reject -> string
(** Wire-state tag: [QUEUE_FULL], [SHED], [DEADLINE_EXCEEDED],
    [DRAINING], [LOST] or [FAILED]. *)

val reject_retry_after_ms : reject -> int option
(** A backoff hint for the transient classes ([Shed] carries its own
    estimate; [Queue_full]/[Draining] a nominal one); [None] for the
    terminal classes, which a retry cannot fix. *)

(** Overload shedding: refuse work whose estimated queue delay (pending
    jobs at or above its priority plus running builds, amortized over
    the worker pool at the EWMA build time) exceeds the budget. *)
type shed_policy = {
  sp_max_delay_s : float;  (** estimated-delay budget *)
  sp_exempt_priority : int;  (** priority at or above this is never shed *)
  sp_assumed_build_s : float;  (** EWMA seed before any build finished *)
}

val default_shed_policy : shed_policy
(** 30 s budget, exempt priority 100, 50 ms assumed build. *)

type t

val create :
  ?cache:Build.cache ->
  ?cache_dir:string ->
  ?max_bytes:int ->
  ?quarantine:bool ->
  ?fp:Pld_fabric.Floorplan.t ->
  ?queue_workers:int ->
  ?workers:int ->
  ?jobs:int ->
  ?pace:float ->
  ?seed:int ->
  ?default_quota:quota ->
  ?quotas:(string * quota) list ->
  ?shed:shed_policy ->
  ?watchdog_timeout_s:float ->
  ?watchdog_tick_s:float ->
  ?faults:Pld_faults.Fault.t ->
  ?telemetry:Pld_telemetry.Telemetry.t ->
  ?logger:Pld_telemetry.Log.t ->
  unit ->
  t
(** Start the service: [queue_workers] (default 2) domains begin
    pulling jobs immediately. [cache] shares an existing cache;
    [cache_dir] opens a persistent one with LRU budget [max_bytes] and
    corrupt-entry [quarantine] mode (passing both [cache] and
    [cache_dir] raises [Invalid_argument]); with neither the service
    is in-memory only. [fp] (default U50),
    [workers]/[jobs]/[pace]/[seed] are the compile parameters every
    job runs with — a fixed seed is what makes equal graphs hit equal
    cache keys across tenants. [quotas] pre-registers per-tenant
    quotas; unknown tenants get [default_quota].

    [shed] (default: no shedding) enables overload shedding. A
    watchdog domain always runs (it expires queued deadlines and
    paces timed waits at [watchdog_tick_s], default 10 ms); with
    [watchdog_timeout_s] it additionally writes off any build running
    longer than the limit — the job fails as {!Lost}, a replacement
    worker is spawned, and the wedged worker is quarantined until its
    build returns. [faults] interprets [hang=<graph>@<ms>] specs from
    {!Pld_faults.Fault} as wedged tool invocations for exactly that
    graph name — the chaos harness's lever.

    [logger] (default {!Pld_telemetry.Log.default}) receives
    structured events for the request lifecycle: admission verdicts
    and dispatches at [Debug], refusals and failures at [Warn], and
    watchdog kills at [Error] — the level that trips an armed flight
    recorder. *)

type outcome = {
  o_tenant : string;
  o_graph : string;
  o_level : Build.level;
  o_cache_hits : int;
  o_recompiled : int;
  o_store_writes : int;  (** store puts this build caused *)
  o_deduped : bool;  (** piggybacked on an identical in-flight job *)
  o_cross_tenant : bool;
      (** served from another tenant's work: deduped onto it, or
          recompiled nothing because it was already in the cache *)
  o_queue_seconds : float;  (** admission to dispatch *)
  o_build_seconds : float;  (** dispatch to completion *)
  o_latency_seconds : float;  (** admission to completion *)
  o_app : Build.app;
}

val outcome_json : outcome -> Pld_telemetry.Json.t
(** Everything except [o_app] — what the daemon sends back. *)

type ticket

val submit :
  t ->
  tenant:string ->
  ?priority:int ->
  ?level:Build.level ->
  ?deadline_ms:int ->
  ?trace_id:string ->
  Graph.t ->
  (ticket, reject) result
(** Enqueue a compile request. [trace_id] (default: freshly minted)
    names the request's distributed trace: it is stamped as a
    ["trace"] attribute on every telemetry span and instant the
    request produces — the admission verdict, the queue wait, the
    build's tool-phase spans, and the end-to-end ["request"] span — so
    one id links the whole lifecycle, including a dedup follower's
    (whose trace shows the join and the outcome but no tool phases).

    Higher [priority] (default 0) is served
    first; equal priorities are FIFO. Admission fails with
    {!Queue_full} when the tenant already has [max_queued] admitted
    jobs waiting, with {!Shed} when the shed policy's delay budget is
    blown, and with {!Draining} when the service is draining or shut
    down. A request identical to an in-flight one (same graph source
    and level) is always admitted: it consumes no queue slot and no
    worker, it just waits for the primary build (whose deadline
    governs). [deadline_ms] starts the request's time budget at
    admission; an expired job fails with {!Deadline_exceeded} — from
    the queue within a watchdog tick, from a running build at the next
    tool-phase boundary. *)

val await : ?timeout_s:float -> t -> ticket -> (outcome, reject) result
(** Block until the ticket's job finishes (or is failed by the
    deadline machinery, the watchdog or {!shutdown}). May be called
    from any domain, repeatedly. The wait is deadline-aware: it gives
    up with {!Lost} after [timeout_s] when given, else 30 s past the
    job's own deadline when it has one; with neither it blocks
    indefinitely. *)

val compile :
  t ->
  tenant:string ->
  ?priority:int ->
  ?level:Build.level ->
  ?deadline_ms:int ->
  ?trace_id:string ->
  Graph.t ->
  (outcome, reject) result
(** [submit] then [await]. *)

type tenant_stats = {
  ts_tenant : string;
  ts_submitted : int;
  ts_completed : int;
  ts_failed : int;
  ts_rejected : int;
  ts_deduped : int;
  ts_cross_hits : int;
  ts_store_writes : int;
  ts_queued : int;  (** snapshot: admitted, waiting *)
  ts_in_flight : int;  (** snapshot: running *)
}

type stats = {
  st_submitted : int;
  st_completed : int;
  st_failed : int;
  st_rejected : int;  (** queue-full and draining refusals *)
  st_shed : int;  (** overload-shed refusals (not in [st_rejected]) *)
  st_deadline_exceeded : int;  (** jobs expired queued or mid-build *)
  st_lost : int;  (** watchdog kills and shutdown orphans *)
  st_watchdog_kills : int;  (** wedged builds written off *)
  st_deduped : int;
  st_cross_hits : int;
  st_queue_depth : int;
  st_in_flight : int;
  st_latencies : float list;  (** seconds, completion order *)
  st_tenants : tenant_stats list;  (** sorted by tenant name *)
  st_store : Pld_engine.Store.stats option;
}

val stats : t -> stats

val percentile : float list -> float -> float
(** [percentile samples q] with [q] in [0,1] — nearest-rank on a sorted
    copy; 0 for an empty list. *)

val stats_json : stats -> Pld_telemetry.Json.t
val render_stats : stats -> string list

val status_json : t -> Pld_telemetry.Json.t
(** Live snapshot for the [Status] admin verb: uptime and state,
    queue occupancy ([depth]/[in_flight]/[workers]/[avg_build_s]),
    the rejection-taxonomy counters, per-tenant quota occupancy with
    latency p50/p95/p99 derived from bucket counts
    ({!Pld_telemetry.Quantile.of_buckets} over fixed shared edges),
    and one entry per in-flight build with its age and trace id.
    Render with {!Protocol.render_status}. *)

val health_json : t -> Pld_telemetry.Json.t
(** Cheap liveness document: [ok] (accepting work), [state]
    ([running]/[draining]/[stopping]), uptime, queue depth and
    in-flight count. *)

val cache : t -> Build.cache
(** The shared cache (the full-write view). *)

val profile_key : Pld_ir.Graph.t -> Build.level -> Pld_util.Digest_lite.t
(** The key fabric profiles are stored under — identical to the job
    key builds dedup on, so an artifact and its profile travel
    together. *)

val find_profile : t -> Pld_ir.Graph.t -> Build.level -> Pld_telemetry.Json.t option
(** The persisted fabric-profile document for this (graph, level), if
    any run has produced one — including a run by another tenant whose
    build this one dedup'd onto. *)

val put_profile : t -> Pld_ir.Graph.t -> Build.level -> Pld_telemetry.Json.t -> unit
(** Persist a fabric profile next to the build's artifacts. *)

val draining : t -> bool
(** True once {!drain} or {!shutdown} has begun: new submissions are
    refused with {!Draining}. *)

val drain : ?grace_s:float -> t -> unit
(** Graceful stop: refuse new work (honest {!Draining} rejections),
    wait up to [grace_s] (default 5 s) for queued and running jobs to
    finish, then {!shutdown}. Jobs still queued when the grace budget
    runs out fail as {!Lost}. *)

val shutdown : t -> unit
(** Stop accepting work, fail every still-queued job as {!Lost}, let
    running builds finish, and join the worker and watchdog domains.
    Idempotent. *)
