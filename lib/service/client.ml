module Json = Pld_telemetry.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  match Sys.file_exists path with
  | false -> Error (Printf.sprintf "no daemon socket at %s" path)
  | true -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd (Unix.ADDR_UNIX path);
        Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
      with Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "connect %s: %s" path (Unix.error_message err)))

let close t = try close_out_noerr t.oc; close_in_noerr t.ic with Sys_error _ -> ()

let call t envelope =
  try
    output_string t.oc (Json.to_string (Protocol.envelope_to_json envelope));
    output_char t.oc '\n';
    flush t.oc;
    match input_line t.ic with
    | exception End_of_file -> Error "daemon closed the connection"
    | line -> (
        match Json.of_string line with
        | exception Json.Parse_error msg -> Error (Printf.sprintf "bad reply: %s" msg)
        | j -> Protocol.reply_of_json j)
  with
  | Sys_error msg -> Error msg
  | Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let rpc ~socket envelope =
  match connect socket with
  | Error _ as e -> e
  | Ok conn -> Fun.protect ~finally:(fun () -> close conn) (fun () -> call conn envelope)
