module Json = Pld_telemetry.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  match Sys.file_exists path with
  | false -> Error (Printf.sprintf "no daemon socket at %s" path)
  | true -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd (Unix.ADDR_UNIX path);
        Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
      with Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "connect %s: %s" path (Unix.error_message err)))

let close t = try close_out_noerr t.oc; close_in_noerr t.ic with Sys_error _ -> ()

let call t envelope =
  try
    output_string t.oc (Json.to_string (Protocol.envelope_to_json envelope));
    output_char t.oc '\n';
    flush t.oc;
    match input_line t.ic with
    | exception End_of_file -> Error "daemon closed the connection"
    | line -> (
        match Json.of_string line with
        | exception Json.Parse_error msg -> Error (Printf.sprintf "bad reply: %s" msg)
        | j -> Protocol.reply_of_json j)
  with
  | Sys_error msg -> Error msg
  | Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let rpc ~socket envelope =
  match connect socket with
  | Error _ as e -> e
  | Ok conn -> Fun.protect ~finally:(fun () -> close conn) (fun () -> call conn envelope)

(* ---------- retrying RPC ---------- *)

module T = Pld_telemetry.Telemetry
module Rng = Pld_util.Rng

type backoff = {
  b_attempts : int;
  b_base_s : float;
  b_cap_s : float;
  b_jitter : float;
  b_seed : int;
}

let default_backoff = { b_attempts = 5; b_base_s = 0.01; b_cap_s = 0.5; b_jitter = 0.5; b_seed = 7 }

(* Deterministic per (policy, attempt): exponential growth capped at
   [b_cap_s], then shrunk by a seeded jitter fraction so a thundering
   herd of identical clients still needs identical seeds to stampede
   in lockstep. *)
let backoff_delay p attempt =
  let expo = p.b_base_s *. (2.0 ** float_of_int attempt) in
  let capped = Float.min p.b_cap_s expo in
  let jitter =
    if p.b_jitter <= 0.0 then 0.0
    else
      let rng = Rng.create ((p.b_seed * 1000003) + attempt) in
      p.b_jitter *. Rng.float rng 1.0
  in
  capped *. (1.0 -. jitter)

(* A reply the server marked transient (SHED, DRAINING, QUEUE_FULL via
   retry_after_ms) is retryable; in-flight dedup makes the repeat
   idempotent server-side. Hard errors return immediately.

   When the envelope carries a trace id, every attempt is recorded as
   a wall span (cat "client", attrs trace/attempt) and every retry
   decision as an instant — the client-side half of the request's
   distributed trace, stitched to the server half by the shared id. *)
let rpc_retry ?(backoff = default_backoff) ?(telemetry = T.default) ~socket envelope =
  let trace_attrs =
    match envelope.Protocol.trace with Some id -> [ ("trace", id) ] | None -> []
  in
  let count_retry ~reason =
    T.incr (T.counter telemetry "client.retries");
    T.instant telemetry ~cat:"client"
      ~attrs:(trace_attrs @ [ ("reason", reason) ])
      "rpc.retry"
  in
  let attempt_rpc attempt =
    T.with_span telemetry ~cat:"client"
      ~attrs:(trace_attrs @ [ ("attempt", string_of_int attempt); ("socket", socket) ])
      "rpc.attempt"
      (fun () -> rpc ~socket envelope)
  in
  let rec go attempt =
    let retry err =
      if attempt + 1 >= backoff.b_attempts then err
      else begin
        count_retry ~reason:"transport";
        Unix.sleepf (backoff_delay backoff attempt);
        go (attempt + 1)
      end
    in
    match attempt_rpc attempt with
    | Error _ as e ->
        (* Transport failure: connect refused, EPIPE/ECONNRESET on a
           dying daemon, or mid-stream EOF. Reconnect and resend. *)
        retry e
    | Ok reply when not reply.Protocol.ok -> (
        match Protocol.retry_after_ms reply with
        | Some ms when attempt + 1 < backoff.b_attempts ->
            count_retry
              ~reason:(Option.value ~default:"busy" (Protocol.reply_state reply));
            Unix.sleepf (Float.max (float_of_int ms /. 1000.0) (backoff_delay backoff attempt));
            go (attempt + 1)
        | Some _ | None -> Ok reply)
    | Ok _ as ok -> ok
  in
  go 0
