(** Cycle-level PicoRV32-class core model.

    Unified instruction/data memory, memory-mapped stream ports wired
    to the page's leaf interface, unpipelined multi-cycle timing (CPI
    ≈ 3-5), and an [ecall] hook the firmware ap-runtime plugs into.

    MMIO map (word accesses):
    - [0x1000_0000 + 8*i] — read stream port i (blocks while empty)
    - [0x1000_0100 + 8*i] — write stream port i (blocks while full)
    - [0x1000_0200]       — store halts the core *)

(** Core timing profile: the overlay processor menu of the paper's
    future work (§9). [picorv32] is the paper's prototype (unpipelined,
    CPI 3-5); [pipelined] models a ZipCPU/VexRiscv-class in-order
    pipeline with the same ISA and a faster ap-runtime. *)
type profile = {
  profile_name : string;
  c_alu : int;
  c_mem : int;
  c_jump : int;
  c_taken : int;
  c_not_taken : int;
  c_mul : int;
  c_div : int;
  ecall_scale : float;  (** multiplier on firmware-runtime cycle costs *)
}

val picorv32 : profile
val pipelined : profile

type trap = {
  trap_msg : string;
  trap_pc : int;  (** pc at the faulting instruction *)
  trap_instr : int32;  (** faulting instruction word (0 if pc unmapped) *)
  trap_cycle : int;  (** model cycle count at the trap *)
}

type status =
  | Running
  | Stalled  (** blocked on a stream port; retry after tokens move *)
  | Halted
  | Trapped of trap  (** illegal instruction / bad access, with machine state *)

val describe_trap : trap -> string
(** ["<msg> (pc=0x.. instr=0x.. cycle=..)"]. *)

type t = {
  mem : Bytes.t;
  regs : int32 array;
  mutable pc : int;
  mutable cycles : int;  (** model cycles at the 200 MHz overlay clock *)
  mutable retired : int;  (** instructions completed *)
  mutable status : status;
  stream_read : int -> int32 option;
  stream_write : int -> int32 -> bool;
  on_ecall : t -> int;  (** performs the call, returns cycles to charge *)
  profile : profile;
}

val mmio_in_base : int
val mmio_out_base : int
val mmio_halt : int

val create :
  ?mem_kb:int ->
  ?profile:profile ->
  ?stream_read:(int -> int32 option) ->
  ?stream_write:(int -> int32 -> bool) ->
  ?on_ecall:(t -> int) ->
  unit ->
  t
(** [mem_kb] defaults to 192 (the paper's maximum page memory);
    [profile] to {!picorv32}. *)

val load_words : t -> addr:int -> int32 array -> unit
val read_word : t -> int -> int32
val write_word : t -> int -> int32 -> unit
val read_reg : t -> int -> int32
val write_reg : t -> int -> int32 -> unit

val inject_trap : t -> string -> unit
(** Force the core into [Trapped] with its current machine state —
    fault injection's hook. *)

val step : t -> status
(** Execute (or retry) one instruction. *)

val run : ?max_cycles:int -> t -> status
(** Step until halt, trap, or stall. Returns the final status
    ([Running] only if [max_cycles] expired). *)

val pmu_tick : t -> Pld_telemetry.Pmu.series -> last:int -> int
(** Periodic PMU sampling hook for a driver that runs the core in
    quanta: records the cycles retired since [last] as one sample on
    the core's own cycle clock and returns the new mark (the current
    cycle count) for the next tick. Nothing is recorded when no cycles
    elapsed. *)
