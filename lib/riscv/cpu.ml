module Telemetry = Pld_telemetry.Telemetry

type profile = {
  profile_name : string;
  c_alu : int;
  c_mem : int;
  c_jump : int;
  c_taken : int;
  c_not_taken : int;
  c_mul : int;
  c_div : int;
  ecall_scale : float;
}

let picorv32 =
  { profile_name = "picorv32"; c_alu = 3; c_mem = 5; c_jump = 5; c_taken = 5; c_not_taken = 3;
    c_mul = 5; c_div = 40; ecall_scale = 1.0 }

let pipelined =
  { profile_name = "pipelined"; c_alu = 1; c_mem = 2; c_jump = 2; c_taken = 2; c_not_taken = 1;
    c_mul = 2; c_div = 20; ecall_scale = 0.45 }

type trap = { trap_msg : string; trap_pc : int; trap_instr : int32; trap_cycle : int }

type status = Running | Stalled | Halted | Trapped of trap

let describe_trap tr =
  Printf.sprintf "%s (pc=0x%x instr=0x%08lx cycle=%d)" tr.trap_msg tr.trap_pc tr.trap_instr
    tr.trap_cycle

type t = {
  mem : Bytes.t;
  regs : int32 array;
  mutable pc : int;
  mutable cycles : int;
  mutable retired : int;
  mutable status : status;
  stream_read : int -> int32 option;
  stream_write : int -> int32 -> bool;
  on_ecall : t -> int;
  profile : profile;
}

let mmio_in_base = 0x1000_0000
let mmio_out_base = 0x1000_0100
let mmio_halt = 0x1000_0200

let create ?(mem_kb = 192) ?(profile = picorv32) ?(stream_read = fun _ -> None)
    ?(stream_write = fun _ _ -> true) ?(on_ecall = fun _ -> 10) () =
  {
    mem = Bytes.make (mem_kb * 1024) '\000';
    regs = Array.make 32 0l;
    pc = 0;
    cycles = 0;
    retired = 0;
    status = Running;
    stream_read;
    stream_write;
    on_ecall;
    profile;
  }

let read_reg t r = if r = 0 then 0l else t.regs.(r)
let write_reg t r v = if r <> 0 then t.regs.(r) <- v

let in_mem t addr = addr >= 0 && addr + 3 < Bytes.length t.mem

(* Capture the faulting machine state: current pc, the instruction word
   there (0 if the pc itself is unmapped), and the cycle count. *)
let trap_state t msg =
  Telemetry.incr (Telemetry.counter Telemetry.default "softcore.traps");
  let instr = if in_mem t t.pc then Bytes.get_int32_le t.mem t.pc else 0l in
  { trap_msg = msg; trap_pc = t.pc; trap_instr = instr; trap_cycle = t.cycles }

let inject_trap t msg = t.status <- Trapped (trap_state t msg)

let read_word t addr =
  if not (in_mem t addr) then invalid_arg (Printf.sprintf "Cpu.read_word: 0x%x out of memory" addr);
  Bytes.get_int32_le t.mem addr

let write_word t addr v =
  if not (in_mem t addr) then invalid_arg (Printf.sprintf "Cpu.write_word: 0x%x out of memory" addr);
  Bytes.set_int32_le t.mem addr v

let load_words t ~addr words = Array.iteri (fun i w -> write_word t (addr + (4 * i)) w) words


let to_u32 v = Int32.logand v (-1l)
let u_lt a b = Int32.unsigned_compare a b < 0

let mmio_port base addr = if addr >= base && addr < base + 0x100 && addr land 7 = 0 then Some ((addr - base) / 8) else None

let step t =
  match t.status with
  | Halted | Trapped _ -> t.status
  | Running | Stalled -> begin
      t.status <- Running;
      if t.pc < 0 || t.pc + 3 >= Bytes.length t.mem then begin
        t.status <- Trapped (trap_state t (Printf.sprintf "pc 0x%x out of memory" t.pc));
        t.status
      end
      else begin
        let word = Bytes.get_int32_le t.mem t.pc in
        match Isa.decode word with
        | None ->
            t.status <- Trapped (trap_state t (Printf.sprintf "illegal instruction 0x%08lx" word));
            t.status
        | Some instr -> begin
            let rd_ v = read_reg t v in
            let next = ref (t.pc + 4) in
            let p = t.profile in
            let charge = ref p.c_alu in
            let retire = ref true in
            (try
               (match instr with
               | Isa.Lui (rd, imm) -> write_reg t rd (Int32.shift_left (Int32.of_int imm) 12)
               | Isa.Auipc (rd, imm) ->
                   write_reg t rd (Int32.add (Int32.of_int t.pc) (Int32.shift_left (Int32.of_int imm) 12))
               | Isa.Jal (rd, imm) ->
                   write_reg t rd (Int32.of_int (t.pc + 4));
                   next := t.pc + imm;
                   charge := p.c_jump
               | Isa.Jalr (rd, rs1, imm) ->
                   let target = Int32.to_int (Int32.add (rd_ rs1) (Int32.of_int imm)) land lnot 1 in
                   write_reg t rd (Int32.of_int (t.pc + 4));
                   next := target;
                   charge := p.c_jump
               | Isa.Branch (c, rs1, rs2, imm) ->
                   let a = rd_ rs1 and b = rd_ rs2 in
                   let taken =
                     match c with
                     | Isa.Beq -> Int32.equal a b
                     | Isa.Bne -> not (Int32.equal a b)
                     | Isa.Blt -> Int32.compare a b < 0
                     | Isa.Bge -> Int32.compare a b >= 0
                     | Isa.Bltu -> u_lt a b
                     | Isa.Bgeu -> not (u_lt a b)
                   in
                   if taken then begin
                     next := t.pc + imm;
                     charge := p.c_taken
                   end
                   else charge := p.c_not_taken
               | Isa.Load (w, unsigned, rd, rs1, imm) -> begin
                   let addr = Int32.to_int (Int32.add (rd_ rs1) (Int32.of_int imm)) in
                   charge := p.c_mem;
                   match mmio_port mmio_in_base addr with
                   | Some port -> begin
                       match t.stream_read port with
                       | Some v -> write_reg t rd v
                       | None ->
                           (* Blocked: stall, retry this instruction. *)
                           t.status <- Stalled;
                           next := t.pc;
                           retire := false;
                           charge := 1
                     end
                   | None ->
                       if not (in_mem t addr) then failwith (Printf.sprintf "load at 0x%x" addr)
                       else begin
                         let v =
                           match w with
                           | Isa.W -> Bytes.get_int32_le t.mem addr
                           | Isa.H ->
                               let raw = Char.code (Bytes.get t.mem addr) lor (Char.code (Bytes.get t.mem (addr + 1)) lsl 8) in
                               if unsigned then Int32.of_int raw
                               else Int32.of_int (if raw >= 0x8000 then raw - 0x10000 else raw)
                           | Isa.B ->
                               let raw = Char.code (Bytes.get t.mem addr) in
                               if unsigned then Int32.of_int raw
                               else Int32.of_int (if raw >= 0x80 then raw - 0x100 else raw)
                         in
                         write_reg t rd v
                       end
                 end
               | Isa.Store (w, rs2, rs1, imm) -> begin
                   let addr = Int32.to_int (Int32.add (rd_ rs1) (Int32.of_int imm)) in
                   let v = rd_ rs2 in
                   charge := p.c_mem;
                   if addr = mmio_halt then t.status <- Halted
                   else
                     match mmio_port mmio_out_base addr with
                     | Some port ->
                         if not (t.stream_write port v) then begin
                           t.status <- Stalled;
                           next := t.pc;
                           retire := false;
                           charge := 1
                         end
                     | None ->
                         if not (in_mem t addr) then failwith (Printf.sprintf "store at 0x%x" addr)
                         else begin
                           match w with
                           | Isa.W -> Bytes.set_int32_le t.mem addr v
                           | Isa.H ->
                               Bytes.set t.mem addr (Char.chr (Int32.to_int (Int32.logand v 0xFFl)));
                               Bytes.set t.mem (addr + 1)
                                 (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 8) 0xFFl)))
                           | Isa.B -> Bytes.set t.mem addr (Char.chr (Int32.to_int (Int32.logand v 0xFFl)))
                         end
                 end
               | Isa.Alui (a, rd, rs1, imm) ->
                   let x = rd_ rs1 and i32 = Int32.of_int imm in
                   let v =
                     match a with
                     | Isa.Addi -> Int32.add x i32
                     | Isa.Slti -> if Int32.compare x i32 < 0 then 1l else 0l
                     | Isa.Sltiu -> if u_lt x i32 then 1l else 0l
                     | Isa.Xori -> Int32.logxor x i32
                     | Isa.Ori -> Int32.logor x i32
                     | Isa.Andi -> Int32.logand x i32
                     | Isa.Slli -> Int32.shift_left x (imm land 31)
                     | Isa.Srli -> Int32.shift_right_logical x (imm land 31)
                     | Isa.Srai -> Int32.shift_right x (imm land 31)
                   in
                   write_reg t rd v
               | Isa.Alur (o, rd, rs1, rs2) ->
                   let x = rd_ rs1 and y = rd_ rs2 in
                   let sh = Int32.to_int (Int32.logand y 31l) in
                   let wide f =
                     let xi = Int64.of_int32 x and yi = Int64.of_int32 y in
                     f xi yi
                   in
                   let v =
                     match o with
                     | Isa.Radd -> Int32.add x y
                     | Isa.Rsub -> Int32.sub x y
                     | Isa.Rsll -> Int32.shift_left x sh
                     | Isa.Rslt -> if Int32.compare x y < 0 then 1l else 0l
                     | Isa.Rsltu -> if u_lt x y then 1l else 0l
                     | Isa.Rxor -> Int32.logxor x y
                     | Isa.Rsrl -> Int32.shift_right_logical x sh
                     | Isa.Rsra -> Int32.shift_right x sh
                     | Isa.Ror -> Int32.logor x y
                     | Isa.Rand -> Int32.logand x y
                     | Isa.Rmul ->
                         charge := p.c_mul;
                         Int32.mul x y
                     | Isa.Rmulh ->
                         charge := p.c_mul;
                         wide (fun a b -> Int64.to_int32 (Int64.shift_right (Int64.mul a b) 32))
                     | Isa.Rmulhsu ->
                         charge := p.c_mul;
                         let yu = Int64.logand (Int64.of_int32 y) 0xFFFFFFFFL in
                         Int64.to_int32 (Int64.shift_right (Int64.mul (Int64.of_int32 x) yu) 32)
                     | Isa.Rmulhu ->
                         charge := p.c_mul;
                         let xu = Int64.logand (Int64.of_int32 x) 0xFFFFFFFFL in
                         let yu = Int64.logand (Int64.of_int32 y) 0xFFFFFFFFL in
                         Int64.to_int32 (Int64.shift_right_logical (Int64.mul xu yu) 32)
                     | Isa.Rdiv ->
                         charge := p.c_div;
                         if Int32.equal y 0l then -1l
                         else if Int32.equal x Int32.min_int && Int32.equal y (-1l) then x
                         else Int32.div x y
                     | Isa.Rdivu ->
                         charge := p.c_div;
                         if Int32.equal y 0l then -1l else Int32.unsigned_div x y
                     | Isa.Rrem ->
                         charge := p.c_div;
                         if Int32.equal y 0l then x
                         else if Int32.equal x Int32.min_int && Int32.equal y (-1l) then 0l
                         else Int32.rem x y
                     | Isa.Rremu ->
                         charge := p.c_div;
                         if Int32.equal y 0l then x else Int32.unsigned_rem x y
                   in
                   write_reg t rd (to_u32 v)
               | Isa.Ecall -> charge := max 1 (int_of_float (p.ecall_scale *. float_of_int (t.on_ecall t)))
               | Isa.Ebreak -> t.status <- Halted);
               t.cycles <- t.cycles + !charge;
               if !retire then t.retired <- t.retired + 1;
               t.pc <- !next
             with Failure msg -> t.status <- Trapped (trap_state t msg));
            t.status
          end
      end
    end

let run ?(max_cycles = max_int) t =
  let c0 = t.cycles in
  let rec go () =
    if t.cycles >= max_cycles then t.status
    else
      match step t with
      | Running -> go ()
      | (Stalled | Halted | Trapped _) as s -> s
  in
  let s = go () in
  Telemetry.incr ~by:(t.cycles - c0) (Telemetry.counter Telemetry.default "softcore.cycles");
  s

let pmu_tick t series ~last =
  if t.cycles > last then
    Pld_telemetry.Pmu.add series ~cycle:t.cycles (float_of_int (t.cycles - last));
  t.cycles
